//! Direct client↔app loops (no harness, no network): the behaviors and the
//! applications agree on wire formats and semantics for long interactions.

use nilicon::traffic::ClientBehavior;
use nilicon_container::{Application, ContainerRuntime, ContainerSpec, GuestCtx};
use nilicon_sim::kernel::Kernel;
use nilicon_workloads::{
    EchoBehavior, NodeApp, RedisApp, Scale, SiegeBehavior, SsdbApp, StackEchoApp, YcsbBehavior,
};

fn host(spec: &ContainerSpec) -> (Kernel, nilicon_sim::ids::Pid) {
    let mut k = Kernel::default();
    let c = ContainerRuntime::create(&mut k, spec).unwrap();
    (k, c.init_pid())
}

/// Drive `rounds` closed-loop interactions between one behavior client and
/// the app, verifying at the end.
fn drive(
    app: &mut dyn Application,
    behavior: &mut dyn ClientBehavior,
    k: &mut Kernel,
    pid: nilicon_sim::ids::Pid,
    rounds: usize,
) {
    {
        let mut ctx = GuestCtx::new(k, pid, 0);
        app.init(&mut ctx).unwrap();
    }
    for i in 0..rounds {
        for idx in 0..behavior.client_count() {
            let Some(req) = behavior.next_request(idx, i as u64) else {
                continue;
            };
            let resp = {
                let mut ctx = GuestCtx::new(k, pid, i as u64);
                app.handle_request(&mut ctx, &req).unwrap()
            };
            behavior.on_response(idx, &resp.response, i as u64, 0);
        }
    }
    behavior.verify().expect("behavior validates the app");
}

#[test]
fn ycsb_against_redis_long_run() {
    let scale = Scale { kv_records: 1000, batch_ops: 50, ..Scale::small() };
    let mut app = RedisApp::new(scale, true);
    let mut spec = ContainerSpec::server("redis", 10, 6379);
    spec.heap_pages = app.heap_pages();
    let (mut k, pid) = host(&spec);
    let mut b = YcsbBehavior::new(3, scale, None);
    drive(&mut app, &mut b, &mut k, pid, 40);
    assert_eq!(b.responses(), 120);
    assert!(b.errors().is_empty());
}

#[test]
fn ycsb_against_ssdb_long_run() {
    let scale = Scale { kv_records: 500, batch_ops: 20, ..Scale::small() };
    let mut app = SsdbApp::new(scale);
    let mut spec = ContainerSpec::server("ssdb", 10, 8888);
    spec.heap_pages = app.heap_pages();
    let (mut k, pid) = host(&spec);
    let mut b = YcsbBehavior::new(2, scale, None);
    drive(&mut app, &mut b, &mut k, pid, 30);
    assert!(k.vfs.disk.writes_total() > 0, "persistence reached the device");
}

#[test]
fn siege_against_node_long_run() {
    let scale = Scale::small();
    let mut app = NodeApp::new(scale);
    let mut spec = ContainerSpec::server("node", 10, 3000);
    spec.heap_pages = app.heap_pages();
    let (mut k, pid) = host(&spec);
    let mut b = SiegeBehavior::new(4, 4096, app.response_len, None);
    b.skip_prefix = 4;
    drive(&mut app, &mut b, &mut k, pid, 25);
    assert_eq!(b.responses(), 100);
}

#[test]
fn echo_against_stack_echo_long_run() {
    let mut app = StackEchoApp::new();
    let mut spec = ContainerSpec::server("stack-echo", 10, 7778);
    spec.heap_pages = 64;
    let (mut k, pid) = host(&spec);
    let mut b = EchoBehavior::new(2, 1, 50_000, None);
    drive(&mut app, &mut b, &mut k, pid, 30);
    assert_eq!(b.responses(), 60);
}

#[test]
fn ycsb_catches_a_lying_server() {
    // Feed YCSB a server that silently drops every write: the version check
    // must flag lost updates. (The validation campaign's teeth.)
    struct LossyKv {
        inner: RedisApp,
    }
    impl Application for LossyKv {
        fn name(&self) -> &str {
            "lossy"
        }
        fn init(&mut self, ctx: &mut GuestCtx<'_>) -> nilicon_sim::SimResult<()> {
            self.inner.init(ctx)
        }
        fn handle_request(
            &mut self,
            ctx: &mut GuestCtx<'_>,
            req: &[u8],
        ) -> nilicon_sim::SimResult<nilicon_container::RequestOutcome> {
            // Strip all Sets before executing (acks them without applying).
            let mut request = nilicon_workloads::KvRequest::decode(req)?;
            let sets = request
                .ops
                .iter()
                .filter(|o| matches!(o, nilicon_workloads::KvOp::Set { .. }))
                .count() as u32;
            request.ops.retain(|o| matches!(o, nilicon_workloads::KvOp::Get { .. }));
            let out = self.inner.handle_request(ctx, &request.encode())?;
            let mut resp = nilicon_workloads::KvResponse::decode(&out.response)?;
            resp.sets_acked += sets; // lie
            Ok(nilicon_container::RequestOutcome { response: resp.encode() })
        }
    }

    let scale = Scale { kv_records: 200, batch_ops: 30, ..Scale::small() };
    let mut app = LossyKv { inner: RedisApp::new(scale, true) };
    let mut spec = ContainerSpec::server("lossy", 10, 6379);
    spec.heap_pages = app.inner.heap_pages();
    let (mut k, pid) = host(&spec);

    let mut b = YcsbBehavior::new(1, scale, None);
    {
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        app.init(&mut ctx).unwrap();
    }
    let mut caught = false;
    for i in 0..10 {
        let req = b.next_request(0, i).unwrap();
        let resp = {
            let mut ctx = GuestCtx::new(&mut k, pid, i);
            app.handle_request(&mut ctx, &req).unwrap()
        };
        b.on_response(0, &resp.response, i, 0);
        if b.verify().is_err() {
            caught = true;
            break;
        }
    }
    assert!(caught, "dropped writes must be detected as lost updates");
}
