//! A slot-based key-value store living in guest memory, shared by the
//! Redis-like and SSDB-like benchmarks, plus the batched wire format the
//! paper's custom client uses (§VI: "each request to Redis/SSDB was a batch
//! of 1K requests consisting of 50% reads and 50% writes").
//!
//! Records are stored at fixed heap offsets (slot-indexed), with a header
//! carrying the version; every `set` writes real bytes through the simulated
//! syscall surface, so dirty-page tracking, checkpointing, and failover all
//! operate on real state. `aux_touch` models the allocator/hash-table
//! metadata churn real stores exhibit around each operation.

use nilicon_container::GuestCtx;
use nilicon_sim::{SimError, SimResult, PAGE_SIZE};

/// Header bytes per record slot.
const HEADER: usize = 16; // version u64 + len u32 + checksum u32

/// One operation in a batched request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// Store `value` (version-stamped) at `slot`.
    Set {
        /// Slot index.
        slot: u32,
        /// Client-assigned monotone version.
        version: u64,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Read `slot`.
    Get {
        /// Slot index.
        slot: u32,
    },
}

/// A batched request.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvRequest {
    /// Operations, executed in order.
    pub ops: Vec<KvOp>,
}

impl KvRequest {
    /// Serialize for the wire.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(16 + self.ops.len() * 24);
        v.extend_from_slice(&(self.ops.len() as u32).to_le_bytes());
        for op in &self.ops {
            match op {
                KvOp::Set {
                    slot,
                    version,
                    value,
                } => {
                    v.push(1);
                    v.extend_from_slice(&slot.to_le_bytes());
                    v.extend_from_slice(&version.to_le_bytes());
                    v.extend_from_slice(&(value.len() as u32).to_le_bytes());
                    v.extend_from_slice(value);
                }
                KvOp::Get { slot } => {
                    v.push(0);
                    v.extend_from_slice(&slot.to_le_bytes());
                }
            }
        }
        v
    }

    /// Parse from the wire.
    pub fn decode(buf: &[u8]) -> SimResult<Self> {
        let err = || SimError::Invalid("malformed kv request".into());
        let mut i = 0usize;
        let take = |i: &mut usize, n: usize| -> SimResult<&[u8]> {
            if *i + n > buf.len() {
                return Err(err());
            }
            let s = &buf[*i..*i + n];
            *i += n;
            Ok(s)
        };
        let count = u32::from_le_bytes(take(&mut i, 4)?.try_into().unwrap()) as usize;
        let mut ops = Vec::with_capacity(count);
        for _ in 0..count {
            let tag = take(&mut i, 1)?[0];
            let slot = u32::from_le_bytes(take(&mut i, 4)?.try_into().unwrap());
            if tag == 1 {
                let version = u64::from_le_bytes(take(&mut i, 8)?.try_into().unwrap());
                let len = u32::from_le_bytes(take(&mut i, 4)?.try_into().unwrap()) as usize;
                let value = take(&mut i, len)?.to_vec();
                ops.push(KvOp::Set {
                    slot,
                    version,
                    value,
                });
            } else {
                ops.push(KvOp::Get { slot });
            }
        }
        Ok(KvRequest { ops })
    }
}

/// Response to a batched request.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvResponse {
    /// `(slot, version, value)` for each Get, in request order.
    pub gets: Vec<(u32, u64, Vec<u8>)>,
    /// Number of Sets acknowledged.
    pub sets_acked: u32,
}

impl KvResponse {
    /// Serialize for the wire.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::new();
        v.extend_from_slice(&self.sets_acked.to_le_bytes());
        v.extend_from_slice(&(self.gets.len() as u32).to_le_bytes());
        for (slot, version, value) in &self.gets {
            v.extend_from_slice(&slot.to_le_bytes());
            v.extend_from_slice(&version.to_le_bytes());
            v.extend_from_slice(&(value.len() as u32).to_le_bytes());
            v.extend_from_slice(value);
        }
        v
    }

    /// Parse from the wire.
    pub fn decode(buf: &[u8]) -> SimResult<Self> {
        let err = || SimError::Invalid("malformed kv response".into());
        let mut i = 0usize;
        let take = |i: &mut usize, n: usize| -> SimResult<&[u8]> {
            if *i + n > buf.len() {
                return Err(err());
            }
            let s = &buf[*i..*i + n];
            *i += n;
            Ok(s)
        };
        let sets_acked = u32::from_le_bytes(take(&mut i, 4)?.try_into().unwrap());
        let count = u32::from_le_bytes(take(&mut i, 4)?.try_into().unwrap()) as usize;
        let mut gets = Vec::with_capacity(count);
        for _ in 0..count {
            let slot = u32::from_le_bytes(take(&mut i, 4)?.try_into().unwrap());
            let version = u64::from_le_bytes(take(&mut i, 8)?.try_into().unwrap());
            let len = u32::from_le_bytes(take(&mut i, 4)?.try_into().unwrap()) as usize;
            gets.push((slot, version, take(&mut i, len)?.to_vec()));
        }
        Ok(KvResponse { gets, sets_acked })
    }
}

/// The deterministic value pattern for `(slot, version)` — clients and
/// servers both compute it, making end-to-end verification possible without
/// shipping golden data around.
pub fn value_pattern(slot: u32, version: u64, len: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(len);
    let seed = (slot as u64)
        .wrapping_mul(0x9E3779B9)
        .wrapping_add(version.wrapping_mul(31));
    for i in 0..len {
        v.push((seed.wrapping_add(i as u64).wrapping_mul(0x2545F4914F6CDD1D) >> 56) as u8);
    }
    v
}

/// The guest-memory store: slot-indexed records + an aux metadata arena.
#[derive(Debug, Clone, Copy)]
pub struct GuestKv {
    /// Heap byte offset of slot 0.
    pub base: u64,
    /// Number of slots.
    pub slots: u32,
    /// Maximum value size.
    pub value_size: usize,
    /// Heap byte offset of the aux (metadata churn) arena.
    pub aux_base: u64,
    /// Aux arena size in pages.
    pub aux_pages: u64,
}

impl GuestKv {
    /// Lay out a store with `slots` records of `value_size` bytes starting at
    /// heap offset `base`, followed by an aux arena of `aux_pages`.
    pub fn layout(base: u64, slots: u32, value_size: usize, aux_pages: u64) -> Self {
        let slot_size = Self::slot_size_for(value_size);
        let data_bytes = slots as u64 * slot_size;
        let aux_base = (base + data_bytes).div_ceil(PAGE_SIZE as u64) * PAGE_SIZE as u64;
        GuestKv {
            base,
            slots,
            value_size,
            aux_base,
            aux_pages,
        }
    }

    /// Bytes per slot (header + value, 64-byte aligned).
    pub fn slot_size_for(value_size: usize) -> u64 {
        ((HEADER + value_size).div_ceil(64) * 64) as u64
    }

    /// Heap pages the store occupies in total (for container sizing).
    pub fn heap_pages_needed(&self) -> u64 {
        (self.aux_base + self.aux_pages * PAGE_SIZE as u64).div_ceil(PAGE_SIZE as u64)
    }

    fn slot_off(&self, slot: u32) -> SimResult<u64> {
        if slot >= self.slots {
            return Err(SimError::Invalid(format!("slot {slot} out of range")));
        }
        Ok(self.base + slot as u64 * Self::slot_size_for(self.value_size))
    }

    /// Store a record: header + value bytes written into guest memory.
    pub fn set(
        &self,
        ctx: &mut GuestCtx<'_>,
        slot: u32,
        version: u64,
        value: &[u8],
    ) -> SimResult<()> {
        if value.len() > self.value_size {
            return Err(SimError::Invalid("value too large".into()));
        }
        let off = self.slot_off(slot)?;
        let mut rec = Vec::with_capacity(HEADER + value.len());
        rec.extend_from_slice(&version.to_le_bytes());
        rec.extend_from_slice(&(value.len() as u32).to_le_bytes());
        rec.extend_from_slice(&checksum(value).to_le_bytes());
        rec.extend_from_slice(value);
        ctx.heap_write(off, &rec)
    }

    /// Load a record: `(version, value)`; an unwritten slot reads as
    /// `(0, empty)`.
    pub fn get(&self, ctx: &mut GuestCtx<'_>, slot: u32) -> SimResult<(u64, Vec<u8>)> {
        let off = self.slot_off(slot)?;
        let mut hdr = [0u8; HEADER];
        ctx.heap_read(off, &mut hdr)?;
        let version = u64::from_le_bytes(hdr[0..8].try_into().unwrap());
        let len = u32::from_le_bytes(hdr[8..12].try_into().unwrap()) as usize;
        let sum = u32::from_le_bytes(hdr[12..16].try_into().unwrap());
        if version == 0 && len == 0 && sum == 0 {
            // Never-written slot (all-zero header).
            return Ok((0, Vec::new()));
        }
        if len > self.value_size {
            return Err(SimError::ImageCorrupt(format!(
                "slot {slot}: bad length {len}"
            )));
        }
        let mut value = vec![0u8; len];
        ctx.heap_read(off + HEADER as u64, &mut value)?;
        if checksum(&value) != sum {
            return Err(SimError::ImageCorrupt(format!(
                "slot {slot}: checksum mismatch"
            )));
        }
        Ok((version, value))
    }

    /// Dirty `n` aux-arena pages, picked deterministically from `salt` —
    /// the metadata/allocator churn around an operation.
    pub fn aux_touch(&self, ctx: &mut GuestCtx<'_>, salt: u64, n: u64) -> SimResult<()> {
        for i in 0..n {
            let h = salt
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(i.wrapping_mul(0xBF58476D1CE4E5B9));
            let page = (h >> 17) % self.aux_pages.max(1);
            ctx.heap_write(
                self.aux_base + page * PAGE_SIZE as u64 + (h % 4000),
                &[h as u8],
            )?;
        }
        Ok(())
    }
}

fn checksum(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811C9DC5;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x01000193);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilicon_container::{ContainerRuntime, ContainerSpec};
    use nilicon_sim::kernel::Kernel;

    fn ctx_kv() -> (Kernel, nilicon_sim::ids::Pid, GuestKv) {
        let mut k = Kernel::default();
        let mut spec = ContainerSpec::server("kv", 10, 1);
        let kv = GuestKv::layout(0, 100, 256, 16);
        spec.heap_pages = kv.heap_pages_needed() + 16;
        let c = ContainerRuntime::create(&mut k, &spec).unwrap();
        (k, c.init_pid(), kv)
    }

    #[test]
    fn set_get_roundtrip() {
        let (mut k, pid, kv) = ctx_kv();
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        let val = value_pattern(5, 1, 200);
        kv.set(&mut ctx, 5, 1, &val).unwrap();
        let (ver, got) = kv.get(&mut ctx, 5).unwrap();
        assert_eq!(ver, 1);
        assert_eq!(got, val);
        // Unwritten slot.
        let (v0, empty) = kv.get(&mut ctx, 6).unwrap();
        assert_eq!((v0, empty.len()), (0, 0));
    }

    #[test]
    fn overwrite_bumps_version() {
        let (mut k, pid, kv) = ctx_kv();
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        kv.set(&mut ctx, 0, 1, &value_pattern(0, 1, 100)).unwrap();
        kv.set(&mut ctx, 0, 2, &value_pattern(0, 2, 50)).unwrap();
        let (ver, got) = kv.get(&mut ctx, 0).unwrap();
        assert_eq!(ver, 2);
        assert_eq!(got, value_pattern(0, 2, 50));
    }

    #[test]
    fn out_of_range_slot_rejected() {
        let (mut k, pid, kv) = ctx_kv();
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        assert!(kv.set(&mut ctx, 100, 1, b"x").is_err());
        assert!(kv.get(&mut ctx, 100).is_err());
    }

    #[test]
    fn corruption_detected() {
        let (mut k, pid, kv) = ctx_kv();
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        kv.set(&mut ctx, 3, 1, &value_pattern(3, 1, 64)).unwrap();
        // Corrupt one value byte behind the store's back.
        let off = kv.slot_off(3).unwrap() + HEADER as u64 + 10;
        ctx.heap_write(off, &[0xFF]).unwrap();
        let mut ctx2 = GuestCtx::new(&mut k, pid, 0);
        assert!(matches!(
            kv.get(&mut ctx2, 3),
            Err(SimError::ImageCorrupt(_))
        ));
    }

    #[test]
    fn request_response_wire_roundtrip() {
        let req = KvRequest {
            ops: vec![
                KvOp::Set {
                    slot: 1,
                    version: 7,
                    value: vec![1, 2, 3],
                },
                KvOp::Get { slot: 1 },
                KvOp::Get { slot: 99 },
            ],
        };
        let decoded = KvRequest::decode(&req.encode()).unwrap();
        assert_eq!(decoded, req);

        let resp = KvResponse {
            gets: vec![(1, 7, vec![1, 2, 3]), (99, 0, vec![])],
            sets_acked: 1,
        };
        assert_eq!(KvResponse::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn malformed_wire_rejected() {
        assert!(KvRequest::decode(&[1, 2]).is_err());
        let mut good = KvRequest {
            ops: vec![KvOp::Get { slot: 1 }],
        }
        .encode();
        good.truncate(good.len() - 1);
        assert!(KvRequest::decode(&good).is_err());
        assert!(KvResponse::decode(&[0]).is_err());
    }

    #[test]
    fn aux_touch_dirties_bounded_pages() {
        let (mut k, pid, kv) = ctx_kv();
        k.mm_mut(pid)
            .unwrap()
            .set_tracking(nilicon_sim::mem::TrackingMode::SoftDirty);
        k.clear_refs(pid).unwrap();
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        kv.aux_touch(&mut ctx, 42, 8).unwrap();
        let dirty = k.mm(pid).unwrap().soft_dirty_count();
        assert!((1..=8).contains(&dirty), "dirty {dirty}");
    }

    #[test]
    fn value_pattern_is_deterministic_and_distinct() {
        assert_eq!(value_pattern(1, 1, 32), value_pattern(1, 1, 32));
        assert_ne!(value_pattern(1, 1, 32), value_pattern(1, 2, 32));
        assert_ne!(value_pattern(1, 1, 32), value_pattern(2, 1, 32));
    }
}
