//! Node-like web service (§VI).
//!
//! The paper's Node benchmark "searches through a database for a keyword and
//! generates a response consisting of text and figures", modified to reply
//! with a static web page; it needs 128 clients to saturate, giving the
//! container a large socket population — which dominates its stop time
//! (§VII-C: "NiLiCon spends around 13ms collecting the socket states") and
//! its backup CPU (Table V: socket state arrives in small chunks).

use crate::clients::golden_page;
use crate::scale::Scale;
use nilicon_container::{Application, GuestCtx, RequestOutcome};
use nilicon_sim::time::Nanos;
use nilicon_sim::{SimError, SimResult, PAGE_SIZE};

const DOC_SIZE: usize = 256;

/// The Node-like application.
#[derive(Debug)]
pub struct NodeApp {
    scale: Scale,
    /// Heap offset of the document database.
    docs_base: u64,
    /// Heap offset of the render-buffer arena.
    arena_base: u64,
    /// Render arena size in pages.
    pub arena_pages: u64,
    /// Pages of render buffer dirtied per request.
    pub render_pages: u64,
    /// Documents scanned per request.
    pub scan_docs: usize,
    /// CPU per request (single-threaded JS event loop).
    pub cpu_per_req: Nanos,
    /// Response body size.
    pub response_len: usize,
    next_arena_slot: u64,
}

impl NodeApp {
    /// Build at `scale`.
    pub fn new(scale: Scale) -> Self {
        let docs_bytes = (scale.node_docs * DOC_SIZE) as u64;
        let arena_base = docs_bytes.div_ceil(PAGE_SIZE as u64) * PAGE_SIZE as u64;
        NodeApp {
            scale,
            docs_base: 0,
            arena_base,
            arena_pages: 4096,
            render_pages: 30,
            scan_docs: 64,
            cpu_per_req: 250_000,
            response_len: 2048,
            next_arena_slot: 0,
        }
    }

    /// Heap pages needed.
    pub fn heap_pages(&self) -> u64 {
        (self.arena_base / PAGE_SIZE as u64) + self.arena_pages + 16
    }

    fn doc_bytes(doc: usize) -> [u8; DOC_SIZE] {
        let mut d = [0u8; DOC_SIZE];
        let mut s = doc as u64 ^ 0xA5A5_5A5A;
        for b in d.iter_mut() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *b = (s >> 33) as u8;
        }
        d
    }
}

impl Application for NodeApp {
    fn name(&self) -> &str {
        "node"
    }

    fn init(&mut self, ctx: &mut GuestCtx<'_>) -> SimResult<()> {
        // Load the searchable document database into guest memory.
        for doc in 0..self.scale.node_docs {
            ctx.heap_write(
                self.docs_base + (doc * DOC_SIZE) as u64,
                &Self::doc_bytes(doc),
            )?;
        }
        Ok(())
    }

    fn handle_request(&mut self, ctx: &mut GuestCtx<'_>, req: &[u8]) -> SimResult<RequestOutcome> {
        if req.len() < 4 {
            return Err(SimError::Invalid("node request too short".into()));
        }
        let keyword = u32::from_le_bytes(req[0..4].try_into().unwrap());
        ctx.cpu(self.cpu_per_req);

        // Search: scan a window of real document bytes.
        let start = (keyword as usize * 7) % self.scale.node_docs;
        let mut hits = 0u32;
        let mut buf = vec![0u8; DOC_SIZE];
        for i in 0..self.scan_docs.min(self.scale.node_docs) {
            let doc = (start + i) % self.scale.node_docs;
            ctx.heap_read(self.docs_base + (doc * DOC_SIZE) as u64, &mut buf)?;
            if buf[0] as u32 & 0xF == keyword & 0xF {
                hits += 1;
            }
        }

        // Render: dirty a run of arena pages (text + figures buffers).
        for _ in 0..self.render_pages {
            let page = self.next_arena_slot % self.arena_pages;
            self.next_arena_slot += 1;
            ctx.heap_write(
                self.arena_base + page * PAGE_SIZE as u64,
                &keyword.to_le_bytes(),
            )?;
        }

        // Static web page, keyed by the request (golden-copy verifiable).
        let mut response = golden_page(keyword as u64, self.response_len);
        response[0..4].copy_from_slice(&hits.to_le_bytes());
        Ok(RequestOutcome { response })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilicon_container::{ContainerRuntime, ContainerSpec};
    use nilicon_sim::kernel::Kernel;

    fn host(app: &NodeApp) -> (Kernel, nilicon_sim::ids::Pid) {
        let mut k = Kernel::default();
        let mut spec = ContainerSpec::server("node", 10, 3000);
        spec.heap_pages = app.heap_pages();
        let c = ContainerRuntime::create(&mut k, &spec).unwrap();
        (k, c.init_pid())
    }

    #[test]
    fn response_is_golden_page_shaped() {
        let mut app = NodeApp::new(Scale::small());
        let (mut k, pid) = host(&app);
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        app.init(&mut ctx).unwrap();
        let out = app.handle_request(&mut ctx, &7u32.to_le_bytes()).unwrap();
        assert_eq!(out.response.len(), app.response_len);
        // Deterministic: same request, same page (hits prefix included).
        let out2 = app.handle_request(&mut ctx, &7u32.to_le_bytes()).unwrap();
        assert_eq!(out.response, out2.response);
        // Tail matches the golden pattern.
        assert_eq!(&out.response[4..], &golden_page(7, app.response_len)[4..]);
    }

    #[test]
    fn render_dirties_bounded_pages() {
        let mut app = NodeApp::new(Scale::small());
        app.render_pages = 10;
        let (mut k, pid) = host(&app);
        {
            let mut ctx = GuestCtx::new(&mut k, pid, 0);
            app.init(&mut ctx).unwrap();
        }
        k.mm_mut(pid)
            .unwrap()
            .set_tracking(nilicon_sim::mem::TrackingMode::SoftDirty);
        k.clear_refs(pid).unwrap();
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        app.handle_request(&mut ctx, &1u32.to_le_bytes()).unwrap();
        let dirty = k.mm(pid).unwrap().soft_dirty_count();
        assert!((10..=12).contains(&dirty), "render pages dominate: {dirty}");
    }

    #[test]
    fn short_request_rejected() {
        let mut app = NodeApp::new(Scale::small());
        let (mut k, pid) = host(&app);
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        assert!(app.handle_request(&mut ctx, &[1, 2]).is_err());
    }
}
