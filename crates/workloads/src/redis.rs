//! Redis-like in-memory NoSQL store (§VI).
//!
//! Configured as the paper configures Redis: all data in memory,
//! persistence: None. Requests are YCSB-style batches of get/set operations;
//! values live in guest heap pages through [`GuestKv`], and the metadata
//! churn of a real store (dict buckets, allocator) is modeled by aux-arena
//! touches — together these produce the paper's high dirty-page rate
//! (Table III: 6.3 K pages/epoch) and make Redis the most
//! runtime-overhead-bound benchmark (Fig. 3).

use crate::guestkv::{GuestKv, KvOp, KvRequest, KvResponse};
use crate::scale::Scale;
use nilicon_container::{Application, GuestCtx, RequestOutcome};
use nilicon_sim::time::Nanos;
use nilicon_sim::SimResult;

/// The Redis-like application.
#[derive(Debug)]
pub struct RedisApp {
    kv: GuestKv,
    scale: Scale,
    /// CPU per operation (µs-scale; stock batch latency ≈ ops × this).
    pub cpu_per_op: Nanos,
    /// Aux metadata pages dirtied per set.
    pub aux_per_set: u64,
    /// Aux metadata pages dirtied per get.
    pub aux_per_get: u64,
    ops_processed: u64,
    preload: bool,
}

impl RedisApp {
    /// Build at `scale`. `preload` seeds every slot (the YCSB load phase —
    /// gives Redis its ~100 MB restore footprint, Table II).
    pub fn new(scale: Scale, preload: bool) -> Self {
        let kv = GuestKv::layout(0, scale.kv_records as u32, scale.value_size, 2048);
        RedisApp {
            kv,
            scale,
            cpu_per_op: 2_200,
            aux_per_set: 2,
            aux_per_get: 1,
            ops_processed: 0,
            preload,
        }
    }

    /// Heap pages a container hosting this app needs.
    pub fn heap_pages(&self) -> u64 {
        self.kv.heap_pages_needed() + 64
    }

    /// The store layout (for tests).
    pub fn kv(&self) -> &GuestKv {
        &self.kv
    }

    fn exec_batch(&mut self, ctx: &mut GuestCtx<'_>, req: &KvRequest) -> SimResult<KvResponse> {
        let mut resp = KvResponse::default();
        for op in &req.ops {
            ctx.cpu(self.cpu_per_op);
            self.ops_processed += 1;
            match op {
                KvOp::Set {
                    slot,
                    version,
                    value,
                } => {
                    self.kv.set(ctx, *slot, *version, value)?;
                    self.kv
                        .aux_touch(ctx, *slot as u64 ^ version, self.aux_per_set)?;
                    resp.sets_acked += 1;
                }
                KvOp::Get { slot } => {
                    let (version, value) = self.kv.get(ctx, *slot)?;
                    self.kv.aux_touch(ctx, *slot as u64, self.aux_per_get)?;
                    resp.gets.push((*slot, version, value));
                }
            }
        }
        Ok(resp)
    }
}

impl Application for RedisApp {
    fn name(&self) -> &str {
        "redis"
    }

    fn init(&mut self, ctx: &mut GuestCtx<'_>) -> SimResult<()> {
        if self.preload {
            // YCSB load phase: every slot gets a version-0 value.
            for slot in 0..self.scale.kv_records as u32 {
                let v = crate::guestkv::value_pattern(slot, 0, self.scale.value_size);
                self.kv.set(ctx, slot, 0, &v)?;
            }
        }
        Ok(())
    }

    fn handle_request(&mut self, ctx: &mut GuestCtx<'_>, req: &[u8]) -> SimResult<RequestOutcome> {
        let request = KvRequest::decode(req)?;
        let resp = self.exec_batch(ctx, &request)?;
        Ok(RequestOutcome {
            response: resp.encode(),
        })
    }

    fn recover(&mut self, _ctx: &mut GuestCtx<'_>) -> SimResult<()> {
        // All durable state lives in guest memory; nothing to rebuild.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guestkv::value_pattern;
    use nilicon_container::{ContainerRuntime, ContainerSpec};
    use nilicon_sim::kernel::Kernel;

    fn host(app: &RedisApp) -> (Kernel, nilicon_sim::ids::Pid) {
        let mut k = Kernel::default();
        let mut spec = ContainerSpec::server("redis", 10, 6379);
        spec.heap_pages = app.heap_pages();
        let c = ContainerRuntime::create(&mut k, &spec).unwrap();
        (k, c.init_pid())
    }

    #[test]
    fn batch_request_roundtrip() {
        let mut app = RedisApp::new(Scale::small(), false);
        let (mut k, pid) = host(&app);
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        app.init(&mut ctx).unwrap();

        let req = KvRequest {
            ops: vec![
                KvOp::Set {
                    slot: 10,
                    version: 1,
                    value: value_pattern(10, 1, 512),
                },
                KvOp::Get { slot: 10 },
                KvOp::Get { slot: 11 },
            ],
        };
        let out = app.handle_request(&mut ctx, &req.encode()).unwrap();
        let resp = KvResponse::decode(&out.response).unwrap();
        assert_eq!(resp.sets_acked, 1);
        assert_eq!(resp.gets.len(), 2);
        assert_eq!(resp.gets[0], (10, 1, value_pattern(10, 1, 512)));
        assert_eq!(resp.gets[1].1, 0, "unset slot has version 0");
    }

    #[test]
    fn preload_fills_every_slot() {
        let scale = Scale {
            kv_records: 50,
            ..Scale::small()
        };
        let mut app = RedisApp::new(scale, true);
        let (mut k, pid) = host(&app);
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        app.init(&mut ctx).unwrap();
        let req = KvRequest {
            ops: vec![KvOp::Get { slot: 49 }],
        };
        let out = app.handle_request(&mut ctx, &req.encode()).unwrap();
        let resp = KvResponse::decode(&out.response).unwrap();
        assert_eq!(resp.gets[0].2, value_pattern(49, 0, scale.value_size));
    }

    #[test]
    fn cpu_charged_per_op() {
        let mut app = RedisApp::new(Scale::small(), false);
        let (mut k, pid) = host(&app);
        {
            let mut ctx = GuestCtx::new(&mut k, pid, 0);
            app.init(&mut ctx).unwrap();
        }
        k.meter.take();
        let req = KvRequest {
            ops: (0..10).map(|s| KvOp::Get { slot: s }).collect(),
        };
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        app.handle_request(&mut ctx, &req.encode()).unwrap();
        let cost = k.meter.take();
        assert!(
            cost >= 10 * app.cpu_per_op,
            "at least the op CPU, got {cost}"
        );
    }

    #[test]
    fn writes_dirty_pages_realistically() {
        let mut app = RedisApp::new(Scale::small(), false);
        let (mut k, pid) = host(&app);
        {
            let mut ctx = GuestCtx::new(&mut k, pid, 0);
            app.init(&mut ctx).unwrap();
        }
        k.mm_mut(pid)
            .unwrap()
            .set_tracking(nilicon_sim::mem::TrackingMode::SoftDirty);
        k.clear_refs(pid).unwrap();
        let ops: Vec<KvOp> = (0..50)
            .map(|i| KvOp::Set {
                slot: i * 61 % 4000,
                version: 1,
                value: value_pattern(i, 1, 1024),
            })
            .collect();
        let req = KvRequest { ops };
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        app.handle_request(&mut ctx, &req.encode()).unwrap();
        let dirty = k.mm(pid).unwrap().soft_dirty_count();
        // 50 sets × (1-2 value pages + up to 2 aux) — the Table III driver.
        assert!((50..=250).contains(&dirty), "dirty {dirty}");
    }
}
