//! Workload scale knobs.

/// Dataset / footprint scale for the benchmarks.
///
/// The paper's absolute footprints (100 K records, 100 MB Redis datasets,
/// PARSEC native inputs) are reproducible with [`Scale::paper`]; the default
/// [`Scale::small`] keeps unit tests fast while preserving the per-epoch
/// characteristics every table is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// KV records for Redis/SSDB (paper: 100 000 × 1 KiB — YCSB, §VI).
    pub kv_records: usize,
    /// Value size in bytes (paper: 1 KiB).
    pub value_size: usize,
    /// Operations per batched request (paper: 1 000, 50/50 read/write).
    pub batch_ops: usize,
    /// streamcluster data points (native input ≈ 1 M; drives footprint).
    pub sc_points: usize,
    /// swaptions trials per step.
    pub sw_trials: usize,
    /// Documents in the Node search database.
    pub node_docs: usize,
    /// Extra resident-but-clean streamcluster pages, matching the paper's
    /// native-input footprint (~49 K pages, §VII-C) — drives pagemap-scan
    /// and smaps costs without inflating the dirty set.
    pub sc_ballast_pages: u64,
}

impl Scale {
    /// Test scale: small and fast.
    pub fn small() -> Self {
        Scale {
            kv_records: 4_000,
            value_size: 1024,
            batch_ops: 100,
            sc_points: 20_000,
            sw_trials: 64,
            node_docs: 2_000,
            sc_ballast_pages: 0,
        }
    }

    /// Benchmark scale: paper-faithful *per-epoch* characteristics (batch
    /// sizes, dirty-page rates, socket counts) with a dataset footprint
    /// small enough to keep full table sweeps fast. Used by the
    /// `nilicon-bench` binaries; see EXPERIMENTS.md for the scale note.
    pub fn bench() -> Self {
        Scale {
            kv_records: 30_000,
            value_size: 1024,
            batch_ops: 1_000,
            sc_points: 160_000,
            sw_trials: 256,
            node_docs: 8_000,
            sc_ballast_pages: 45_000,
        }
    }

    /// Paper scale (§VI).
    pub fn paper() -> Self {
        Scale {
            kv_records: 100_000,
            value_size: 1024,
            batch_ops: 1_000,
            sc_points: 200_000,
            sw_trials: 256,
            node_docs: 20_000,
            sc_ballast_pages: 45_000,
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_setup_section() {
        let p = Scale::paper();
        assert_eq!(p.kv_records, 100_000);
        assert_eq!(p.value_size, 1024);
        assert_eq!(p.batch_ops, 1_000);
    }

    #[test]
    fn small_is_smaller() {
        let s = Scale::small();
        let p = Scale::paper();
        assert!(s.kv_records < p.kv_records);
        assert!(s.sc_points < p.sc_points);
    }
}
