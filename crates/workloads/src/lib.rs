//! # nilicon-workloads — the paper's benchmarks over the simulated substrate
//!
//! Implements the seven §VI benchmarks as [`nilicon_container::Application`]s
//! plus their load generators as [`nilicon::traffic::ClientBehavior`]s:
//!
//! | Benchmark     | Kind   | Stressing | Client |
//! |---------------|--------|-----------|--------|
//! | Redis         | server | memory (no persistence) | YCSB-style batched 50/50 |
//! | SSDB          | server | disk (full persistence) | YCSB-style batched 50/50 |
//! | Node          | server | many sockets, render buffers | SIEGE-style, 128 clients |
//! | Lighttpd      | server | CPU (PHP watermark), multi-process | SIEGE-style |
//! | DJCMS         | server | nginx+python+mysql pipeline | SIEGE-style |
//! | streamcluster | batch  | memory + threads (PARSEC) | — |
//! | swaptions     | batch  | CPU (PARSEC) | — |
//!
//! plus the §VII-A validation microbenchmarks (file/disk stress, stack echo)
//! and the §VII-B `Net` echo microbenchmark.
//!
//! Every application keeps its durable state **in guest memory/files through
//! the simulated syscall surface** — checkpointing captures real bytes, and
//! the YCSB/echo clients verify semantic consistency across failovers.
//!
//! ## Scale
//!
//! Paper-scale datasets (100 K × 1 KiB records, native PARSEC inputs) are
//! available via [`Scale::paper`]; tests default to [`Scale::small`] for
//! speed. Per-epoch characteristics (dirty pages, sockets) — the drivers of
//! every table — are preserved across scales; total footprint and run length
//! shrink. See EXPERIMENTS.md.

#![warn(missing_docs)]

mod clients;
mod djcms;
mod guestkv;
mod lighttpd;
mod micro;
mod node;
mod redis;
mod scale;
mod ssdb;
mod streamcluster;
mod swaptions;
mod workload;

pub use clients::{EchoBehavior, SiegeBehavior, YcsbBehavior};
pub use djcms::DjcmsApp;
pub use guestkv::{value_pattern, GuestKv, KvOp, KvRequest, KvResponse};
pub use lighttpd::LighttpdApp;
pub use micro::{NetEchoApp, StackEchoApp, StressFsApp};
pub use node::NodeApp;
pub use redis::RedisApp;
pub use scale::Scale;
pub use ssdb::SsdbApp;
pub use streamcluster::StreamclusterApp;
pub use swaptions::SwaptionsApp;
pub use workload::{
    all_server_workloads, all_workloads, djcms, lighttpd, net_echo, node, redis, ssdb, stack_echo,
    streamcluster, stress_fs, swaptions, Workload,
};
