//! Lighttpd-like web server (§VI).
//!
//! The paper evaluates Lighttpd "with requests to a PHP script that
//! watermarks an image" — a CPU-heavy request (stock single-client latency:
//! 285 ms, Table VI) served by a pool of worker processes (1-8 in the §VII-C
//! scalability study, 4 by default). Image processing churns large pixel
//! buffers, which shows up as a bursty dirty-page/state-size distribution
//! (Table IV: state p10 2.05 MB vs p90 14.65 MB).

use crate::clients::golden_page;
use nilicon_container::{Application, GuestCtx, RequestOutcome};
use nilicon_sim::time::Nanos;
use nilicon_sim::{SimError, SimResult, PAGE_SIZE};

/// The Lighttpd+PHP-like application.
#[derive(Debug)]
pub struct LighttpdApp {
    /// Heap offset of the source image.
    image_base: u64,
    /// Source image size in pages.
    pub image_pages: u64,
    /// Heap offset of the pixel-buffer arena.
    arena_base: u64,
    /// Arena size in pages.
    pub arena_pages: u64,
    /// Pixel-buffer pages dirtied per request (GD makes several copies).
    pub churn_pages: u64,
    /// CPU per watermark request (Table VI stock: ≈285 ms).
    pub cpu_per_req: Nanos,
    /// Response (watermarked image) size in bytes.
    pub response_len: usize,
    next_arena_slot: u64,
}

impl LighttpdApp {
    /// Default configuration (4-process container is set in the spec).
    pub fn new() -> Self {
        let image_pages = 60;
        LighttpdApp {
            image_base: 0,
            image_pages,
            arena_base: image_pages * PAGE_SIZE as u64,
            arena_pages: 20_000,
            churn_pages: 3_600,
            cpu_per_req: 280_000_000,
            response_len: 8192,
            next_arena_slot: 0,
        }
    }

    /// Heap pages needed.
    pub fn heap_pages(&self) -> u64 {
        self.image_pages + self.arena_pages + 16
    }
}

impl Default for LighttpdApp {
    fn default() -> Self {
        Self::new()
    }
}

impl Application for LighttpdApp {
    fn name(&self) -> &str {
        "lighttpd"
    }

    fn init(&mut self, ctx: &mut GuestCtx<'_>) -> SimResult<()> {
        // Load the source image.
        for p in 0..self.image_pages {
            let row = golden_page(p ^ 0xBEEF, 128);
            ctx.heap_write(self.image_base + p * PAGE_SIZE as u64, &row)?;
        }
        Ok(())
    }

    fn handle_request(&mut self, ctx: &mut GuestCtx<'_>, req: &[u8]) -> SimResult<RequestOutcome> {
        if req.len() < 4 {
            return Err(SimError::Invalid("lighttpd request too short".into()));
        }
        let image_id = u32::from_le_bytes(req[0..4].try_into().unwrap());
        ctx.cpu(self.cpu_per_req);

        // Read the source image (real bytes), "alpha-blend" a watermark,
        // and write working pixel buffers across the arena.
        let mut acc: u64 = 0;
        let mut row = vec![0u8; 128];
        for p in 0..self.image_pages {
            ctx.heap_read(self.image_base + p * PAGE_SIZE as u64, &mut row)?;
            acc = acc.wrapping_add(row.iter().map(|&b| b as u64).sum::<u64>());
        }
        for _ in 0..self.churn_pages {
            let page = self.next_arena_slot % self.arena_pages;
            self.next_arena_slot += 1;
            ctx.heap_write(
                self.arena_base + page * PAGE_SIZE as u64 + (acc % 3000),
                &image_id.to_le_bytes(),
            )?;
        }

        // The watermarked image bytes, deterministic per request id
        // (golden-copy verifiable, §VII-A).
        Ok(RequestOutcome {
            response: golden_page(image_id as u64, self.response_len),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilicon_container::{ContainerRuntime, ContainerSpec};
    use nilicon_sim::kernel::Kernel;

    fn small() -> LighttpdApp {
        let mut app = LighttpdApp::new();
        app.arena_pages = 256;
        app.churn_pages = 64;
        app
    }

    fn host(app: &LighttpdApp) -> (Kernel, nilicon_sim::ids::Pid) {
        let mut k = Kernel::default();
        let mut spec = ContainerSpec::server("lighttpd", 10, 80);
        spec.heap_pages = app.heap_pages();
        let c = ContainerRuntime::create(&mut k, &spec).unwrap();
        (k, c.init_pid())
    }

    #[test]
    fn watermark_is_deterministic_golden() {
        let mut app = small();
        let (mut k, pid) = host(&app);
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        app.init(&mut ctx).unwrap();
        let out = app.handle_request(&mut ctx, &3u32.to_le_bytes()).unwrap();
        assert_eq!(out.response, golden_page(3, app.response_len));
    }

    #[test]
    fn request_is_cpu_heavy() {
        let mut app = small();
        let (mut k, pid) = host(&app);
        {
            let mut ctx = GuestCtx::new(&mut k, pid, 0);
            app.init(&mut ctx).unwrap();
        }
        k.meter.take();
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        app.handle_request(&mut ctx, &1u32.to_le_bytes()).unwrap();
        let cost = k.meter.take();
        assert!(
            cost >= 280_000_000,
            "Table VI: the PHP watermark dominates at ~280ms, got {cost}"
        );
    }

    #[test]
    fn churn_rotates_across_the_arena() {
        let mut app = small();
        let (mut k, pid) = host(&app);
        {
            let mut ctx = GuestCtx::new(&mut k, pid, 0);
            app.init(&mut ctx).unwrap();
        }
        k.mm_mut(pid)
            .unwrap()
            .set_tracking(nilicon_sim::mem::TrackingMode::SoftDirty);
        k.clear_refs(pid).unwrap();
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        app.handle_request(&mut ctx, &1u32.to_le_bytes()).unwrap();
        let after_one = k.mm(pid).unwrap().soft_dirty_count();
        assert!(after_one as u64 >= app.churn_pages, "churn {after_one}");
    }
}
