//! PARSEC streamcluster (§VI): online k-median clustering.
//!
//! A real clustering kernel over real guest memory: points live as `f32`
//! coordinates in heap pages; each step reads a chunk of points, computes
//! distances to the current centers, writes per-point assignments back, and
//! occasionally opens a new center. All algorithm state (pass, cursor,
//! centers, cost) lives in a guest "state page", so a failover resumes the
//! computation exactly where the last committed epoch left it.
//!
//! Dirty-page behavior emerges naturally: the assignment array is rewritten
//! every pass, so per-epoch dirty pages ≈ the assignment array size — the
//! Table III signature (303 pages/epoch at paper scale).

use crate::scale::Scale;
use nilicon_container::{Application, GuestCtx, StepOutcome};
use nilicon_sim::time::Nanos;
use nilicon_sim::{SimError, SimResult, PAGE_SIZE};

const MAX_CENTERS: usize = 16;
/// State page layout: pass u32, cursor u32, n_centers u32, pad u32,
/// total_cost f64, then MAX_CENTERS center ids (u32).
const STATE_SIZE: usize = 16 + 8 + MAX_CENTERS * 4;

/// The streamcluster application.
#[derive(Debug)]
pub struct StreamclusterApp {
    scale: Scale,
    /// Coordinates per point.
    pub dims: usize,
    /// Points processed per step.
    pub chunk: usize,
    /// Passes over the data set before completion.
    pub passes: u32,
    /// Per-distance-computation CPU (ns per point-center-dim).
    pub cpu_per_dist: Nanos,
    state_base: u64,
    points_base: u64,
    assign_base: u64,
}

impl StreamclusterApp {
    /// Build at `scale`.
    pub fn new(scale: Scale) -> Self {
        let dims = 16;
        let state_base = 0u64;
        let points_base = PAGE_SIZE as u64; // state page, then points
        let points_bytes = (scale.sc_points * dims * 4) as u64;
        let assign_base =
            (points_base + points_bytes).div_ceil(PAGE_SIZE as u64) * PAGE_SIZE as u64;
        StreamclusterApp {
            scale,
            dims,
            chunk: 1024,
            passes: 6,
            cpu_per_dist: 1,
            state_base,
            points_base,
            assign_base,
        }
    }

    /// Heap pages needed.
    pub fn heap_pages(&self) -> u64 {
        self.ballast_base() / PAGE_SIZE as u64 + self.scale.sc_ballast_pages + 4
    }

    /// Heap offset of the ballast region (resident, rarely-written pages
    /// that give streamcluster its native-input footprint).
    fn ballast_base(&self) -> u64 {
        let assign_bytes = (self.scale.sc_points * 8) as u64;
        (self.assign_base + assign_bytes).div_ceil(PAGE_SIZE as u64) * PAGE_SIZE as u64
    }

    /// Assignment-array pages — the per-epoch dirty-page driver.
    pub fn assignment_pages(&self) -> u64 {
        ((self.scale.sc_points * 8) as u64).div_ceil(PAGE_SIZE as u64)
    }

    fn point_coord(point: usize, d: usize) -> f32 {
        // Deterministic synthetic input (stands in for the PARSEC input set).
        let h = (point as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((d as u64).wrapping_mul(0xBF58476D1CE4E5B9));
        ((h >> 40) as f32) / 16_777_216.0
    }

    fn read_state(&self, ctx: &mut GuestCtx<'_>) -> SimResult<(u32, u32, Vec<u32>, f64)> {
        let mut buf = [0u8; STATE_SIZE];
        ctx.heap_read(self.state_base, &mut buf)?;
        let pass = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        let cursor = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        let n_centers = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
        if n_centers > MAX_CENTERS {
            return Err(SimError::ImageCorrupt(
                "streamcluster state page corrupt".into(),
            ));
        }
        let cost = f64::from_le_bytes(buf[16..24].try_into().unwrap());
        let mut centers = Vec::with_capacity(n_centers);
        for i in 0..n_centers {
            centers.push(u32::from_le_bytes(
                buf[24 + i * 4..28 + i * 4].try_into().unwrap(),
            ));
        }
        Ok((pass, cursor, centers, cost))
    }

    fn write_state(
        &self,
        ctx: &mut GuestCtx<'_>,
        pass: u32,
        cursor: u32,
        centers: &[u32],
        cost: f64,
    ) -> SimResult<()> {
        let mut buf = [0u8; STATE_SIZE];
        buf[0..4].copy_from_slice(&pass.to_le_bytes());
        buf[4..8].copy_from_slice(&cursor.to_le_bytes());
        buf[8..12].copy_from_slice(&(centers.len() as u32).to_le_bytes());
        buf[16..24].copy_from_slice(&cost.to_le_bytes());
        for (i, c) in centers.iter().enumerate() {
            buf[24 + i * 4..28 + i * 4].copy_from_slice(&c.to_le_bytes());
        }
        ctx.heap_write(self.state_base, &buf)
    }
}

impl Application for StreamclusterApp {
    fn name(&self) -> &str {
        "streamcluster"
    }

    fn is_server(&self) -> bool {
        false
    }

    fn init(&mut self, ctx: &mut GuestCtx<'_>) -> SimResult<()> {
        // Load points into guest memory, page-sized strides at a time.
        let per_page = PAGE_SIZE / 4;
        let total_floats = self.scale.sc_points * self.dims;
        let mut buf = Vec::with_capacity(PAGE_SIZE);
        let mut written = 0usize;
        while written < total_floats {
            buf.clear();
            let n = per_page.min(total_floats - written);
            for i in 0..n {
                let flat = written + i;
                let (point, d) = (flat / self.dims, flat % self.dims);
                buf.extend_from_slice(&Self::point_coord(point, d).to_le_bytes());
            }
            ctx.heap_write(self.points_base + (written * 4) as u64, &buf)?;
            written += n;
        }
        // Materialize the ballast footprint (clean after the initial sync).
        let ballast = self.ballast_base();
        for p in 0..self.scale.sc_ballast_pages {
            ctx.heap_write(ballast + p * PAGE_SIZE as u64, &[1])?;
        }
        // Initial state: pass 0, cursor 0, one center (point 0).
        self.write_state(ctx, 0, 0, &[0], 0.0)
    }

    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> SimResult<StepOutcome> {
        let (mut pass, cursor, mut centers, mut cost) = self.read_state(ctx)?;
        if pass >= self.passes {
            return Ok(StepOutcome { done: true });
        }
        let n_points = self.scale.sc_points;
        let start = cursor as usize;
        let count = self.chunk.min(n_points - start);

        // Read the chunk's coordinates (one bulk guest read).
        let mut raw = vec![0u8; count * self.dims * 4];
        ctx.heap_read(self.points_base + (start * self.dims * 4) as u64, &mut raw)?;

        // Read center coordinates (small bulk reads).
        let mut center_coords: Vec<Vec<f32>> = Vec::with_capacity(centers.len());
        for &c in &centers {
            let mut cbuf = vec![0u8; self.dims * 4];
            ctx.heap_read(
                self.points_base + (c as usize * self.dims * 4) as u64,
                &mut cbuf,
            )?;
            center_coords.push(
                cbuf.chunks_exact(4)
                    .map(|b| f32::from_le_bytes(b.try_into().unwrap()))
                    .collect(),
            );
        }

        // Assign each point to its nearest center (real math on real bytes).
        let mut assignments = Vec::with_capacity(count * 8);
        let mut chunk_cost = 0.0f64;
        let mut worst: (f32, usize) = (-1.0, start);
        for p in 0..count {
            let coords: Vec<f32> = raw[p * self.dims * 4..(p + 1) * self.dims * 4]
                .chunks_exact(4)
                .map(|b| f32::from_le_bytes(b.try_into().unwrap()))
                .collect();
            let mut best = f32::MAX;
            let mut best_c = 0u32;
            for (ci, cc) in center_coords.iter().enumerate() {
                let mut d = 0.0f32;
                for k in 0..self.dims {
                    let diff = coords[k] - cc[k];
                    d += diff * diff;
                }
                if d < best {
                    best = d;
                    best_c = centers[ci];
                }
            }
            if best > worst.0 {
                worst = (best, start + p);
            }
            chunk_cost += best as f64;
            assignments.extend_from_slice(&best_c.to_le_bytes());
            assignments.extend_from_slice(&best.to_le_bytes());
        }
        // Write assignments back (dirties the assignment array).
        ctx.heap_write(self.assign_base + (start * 8) as u64, &assignments)?;
        cost += chunk_cost;

        // Charge the distance math.
        ctx.cpu((count * centers.len().max(1) * self.dims) as Nanos * self.cpu_per_dist + 3_000);

        // Facility-opening heuristic: adopt the worst-served point as a new
        // center when its cost is large relative to the average.
        if centers.len() < MAX_CENTERS
            && count > 0
            && (worst.0 as f64) > 8.0 * (chunk_cost / count as f64)
        {
            centers.push(worst.1 as u32);
        }

        // Advance the cursor / pass.
        let next = start + count;
        let (new_pass, new_cursor) = if next >= n_points {
            (pass + 1, 0)
        } else {
            (pass, next as u32)
        };
        pass = new_pass;
        self.write_state(ctx, pass, new_cursor, &centers, cost)?;
        Ok(StepOutcome {
            done: pass >= self.passes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilicon_container::{ContainerRuntime, ContainerSpec};
    use nilicon_sim::kernel::Kernel;

    fn tiny() -> StreamclusterApp {
        let scale = Scale {
            sc_points: 2048,
            ..Scale::small()
        };
        StreamclusterApp::new(scale)
    }

    fn host(app: &StreamclusterApp) -> (Kernel, nilicon_sim::ids::Pid) {
        let mut k = Kernel::default();
        let mut spec = ContainerSpec::batch("streamcluster", 11);
        spec.heap_pages = app.heap_pages();
        let c = ContainerRuntime::create(&mut k, &spec).unwrap();
        (k, c.init_pid())
    }

    #[test]
    fn runs_to_completion() {
        let mut app = tiny();
        app.passes = 2;
        let (mut k, pid) = host(&app);
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        app.init(&mut ctx).unwrap();
        let mut steps = 0;
        loop {
            let mut ctx = GuestCtx::new(&mut k, pid, steps);
            if app.step(&mut ctx).unwrap().done {
                break;
            }
            steps += 1;
            assert!(steps < 100, "must terminate");
        }
        // 2048 points / 1024 chunk × 2 passes = 4 steps; the 4th reports done.
        assert_eq!(steps, 3);
    }

    #[test]
    fn state_survives_app_object_replacement() {
        // The failover property: a NEW app object resumes from guest state.
        let mut app = tiny();
        let (mut k, pid) = host(&app);
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        app.init(&mut ctx).unwrap();
        for i in 0..3 {
            let mut ctx = GuestCtx::new(&mut k, pid, i);
            app.step(&mut ctx).unwrap();
        }
        let mut ctx = GuestCtx::new(&mut k, pid, 10);
        let (pass, cursor, centers, cost) = app.read_state(&mut ctx).unwrap();

        let app2 = tiny();
        let mut ctx2 = GuestCtx::new(&mut k, pid, 11);
        let (p2, c2, cen2, cost2) = app2.read_state(&mut ctx2).unwrap();
        assert_eq!((pass, cursor, centers, cost), (p2, c2, cen2, cost2));
    }

    #[test]
    fn assignment_array_is_the_dirty_driver() {
        let mut app = tiny();
        let (mut k, pid) = host(&app);
        {
            let mut ctx = GuestCtx::new(&mut k, pid, 0);
            app.init(&mut ctx).unwrap();
        }
        k.mm_mut(pid)
            .unwrap()
            .set_tracking(nilicon_sim::mem::TrackingMode::SoftDirty);
        k.clear_refs(pid).unwrap();
        let mut ctx = GuestCtx::new(&mut k, pid, 1);
        app.step(&mut ctx).unwrap();
        let dirty = k.mm(pid).unwrap().soft_dirty_count() as u64;
        // One chunk: 1024 points × 8 B = 2 pages of assignments + state page.
        assert!((2..=4).contains(&dirty), "dirty {dirty}");
    }

    #[test]
    fn centers_grow_over_time() {
        let mut app = tiny();
        let (mut k, pid) = host(&app);
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        app.init(&mut ctx).unwrap();
        for i in 0..4 {
            let mut ctx = GuestCtx::new(&mut k, pid, i);
            app.step(&mut ctx).unwrap();
        }
        let mut ctx = GuestCtx::new(&mut k, pid, 99);
        let (_, _, centers, cost) = app.read_state(&mut ctx).unwrap();
        assert!(!centers.is_empty());
        assert!(cost > 0.0, "real distances accumulated");
    }
}
