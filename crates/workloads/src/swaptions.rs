//! PARSEC swaptions (§VI): Monte-Carlo swaption pricing (HJM framework).
//!
//! CPU-bound with a tiny write set — the paper's lightest benchmark
//! (Table III: 46 dirty pages/epoch; Fig. 3: 19.5% overhead). Each step
//! prices one swaption by simulating interest-rate paths with a
//! deterministic generator, accumulating the discounted payoff, and writing
//! the running result into a small guest result region. Progress state lives
//! in guest memory, so the computation resumes exactly after failover.

use crate::scale::Scale;
use nilicon_container::{Application, GuestCtx, StepOutcome};
use nilicon_sim::time::Nanos;
use nilicon_sim::{SimResult, PAGE_SIZE};

/// State page: next_swaption u32, done_flag u32, rng u64.
const STATE_SIZE: usize = 16;

/// The swaptions application.
#[derive(Debug)]
pub struct SwaptionsApp {
    scale: Scale,
    /// Swaptions to price in total.
    pub swaptions: u32,
    /// Simulated forward-rate path length.
    pub path_len: usize,
    /// CPU per simulated path step (ns).
    pub cpu_per_path_step: Nanos,
    state_base: u64,
    results_base: u64,
    /// Result region size in pages (the Table III dirty-set driver: 46).
    pub result_pages: u64,
}

impl SwaptionsApp {
    /// Build at `scale`.
    pub fn new(scale: Scale) -> Self {
        SwaptionsApp {
            scale,
            swaptions: 128,
            path_len: 60,
            cpu_per_path_step: 90,
            state_base: 0,
            results_base: PAGE_SIZE as u64,
            result_pages: 46,
        }
    }

    /// Heap pages needed.
    pub fn heap_pages(&self) -> u64 {
        1 + self.result_pages + 4
    }

    fn read_state(&self, ctx: &mut GuestCtx<'_>) -> SimResult<(u32, u32, u64)> {
        let mut buf = [0u8; STATE_SIZE];
        ctx.heap_read(self.state_base, &mut buf)?;
        Ok((
            u32::from_le_bytes(buf[0..4].try_into().unwrap()),
            u32::from_le_bytes(buf[4..8].try_into().unwrap()),
            u64::from_le_bytes(buf[8..16].try_into().unwrap()),
        ))
    }

    fn write_state(&self, ctx: &mut GuestCtx<'_>, next: u32, done: u32, rng: u64) -> SimResult<()> {
        let mut buf = [0u8; STATE_SIZE];
        buf[0..4].copy_from_slice(&next.to_le_bytes());
        buf[4..8].copy_from_slice(&done.to_le_bytes());
        buf[8..16].copy_from_slice(&rng.to_le_bytes());
        ctx.heap_write(self.state_base, &buf)
    }

    fn result_off(&self, swaption: u32) -> u64 {
        // One result page per swaption, rotating over the 46-page region —
        // the small per-epoch write set of Table III.
        self.results_base + (swaption as u64 % self.result_pages) * PAGE_SIZE as u64
    }

    /// Read a priced result back (for tests/examples).
    pub fn result(&self, ctx: &mut GuestCtx<'_>, swaption: u32) -> SimResult<f64> {
        let off = self.result_off(swaption);
        let mut buf = [0u8; 8];
        ctx.heap_read(off, &mut buf)?;
        Ok(f64::from_le_bytes(buf))
    }
}

impl Application for SwaptionsApp {
    fn name(&self) -> &str {
        "swaptions"
    }

    fn is_server(&self) -> bool {
        false
    }

    fn init(&mut self, ctx: &mut GuestCtx<'_>) -> SimResult<()> {
        self.write_state(ctx, 0, 0, 0x5DEECE66D)
    }

    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> SimResult<StepOutcome> {
        let (next, done, mut rng) = self.read_state(ctx)?;
        if done != 0 || next >= self.swaptions {
            return Ok(StepOutcome { done: true });
        }
        // Monte-Carlo: simulate forward-rate paths, accumulate the payoff.
        let trials = self.scale.sw_trials;
        let mut payoff_sum = 0.0f64;
        for _ in 0..trials {
            let mut rate = 0.04f64;
            for _ in 0..self.path_len {
                // LCG standard-normal-ish shock (Irwin-Hall of 4).
                let mut shock = -2.0f64;
                for _ in 0..4 {
                    rng = rng
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    shock += ((rng >> 33) as f64) / (u32::MAX as f64);
                }
                rate += 0.001 * shock;
            }
            payoff_sum += (rate - 0.045).max(0.0);
        }
        let price = payoff_sum / trials as f64;
        ctx.cpu((trials * self.path_len) as Nanos * self.cpu_per_path_step + 2_000);

        // Write the result (small, rotating write set — 46 pages total).
        let off = self.result_off(next);
        let mut rec = price.to_le_bytes().to_vec();
        rec.extend_from_slice(&(next as u64).to_le_bytes());
        ctx.heap_write(off, &rec)?;

        let next = next + 1;
        let finished = next >= self.swaptions;
        self.write_state(ctx, next, finished as u32, rng)?;
        Ok(StepOutcome { done: finished })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilicon_container::{ContainerRuntime, ContainerSpec};
    use nilicon_sim::kernel::Kernel;

    fn host(app: &SwaptionsApp) -> (Kernel, nilicon_sim::ids::Pid) {
        let mut k = Kernel::default();
        let mut spec = ContainerSpec::batch("swaptions", 11);
        spec.heap_pages = app.heap_pages();
        let c = ContainerRuntime::create(&mut k, &spec).unwrap();
        (k, c.init_pid())
    }

    #[test]
    fn prices_all_swaptions_and_finishes() {
        let mut app = SwaptionsApp::new(Scale::small());
        app.swaptions = 5;
        let (mut k, pid) = host(&app);
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        app.init(&mut ctx).unwrap();
        let mut steps = 0;
        loop {
            let mut ctx = GuestCtx::new(&mut k, pid, steps);
            if app.step(&mut ctx).unwrap().done {
                break;
            }
            steps += 1;
        }
        assert_eq!(steps, 4, "5 swaptions, done flag on the 5th");
        let mut ctx = GuestCtx::new(&mut k, pid, 99);
        let p = app.result(&mut ctx, 0).unwrap();
        assert!((0.0..1.0).contains(&p), "plausible price {p}");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut app = SwaptionsApp::new(Scale::small());
            app.swaptions = 3;
            let (mut k, pid) = host(&app);
            let mut ctx = GuestCtx::new(&mut k, pid, 0);
            app.init(&mut ctx).unwrap();
            for i in 0..3 {
                let mut ctx = GuestCtx::new(&mut k, pid, i);
                app.step(&mut ctx).unwrap();
            }
            let mut ctx = GuestCtx::new(&mut k, pid, 9);
            (
                app.result(&mut ctx, 0).unwrap(),
                app.result(&mut ctx, 2).unwrap(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn small_dirty_footprint() {
        let mut app = SwaptionsApp::new(Scale::small());
        let (mut k, pid) = host(&app);
        {
            let mut ctx = GuestCtx::new(&mut k, pid, 0);
            app.init(&mut ctx).unwrap();
        }
        k.mm_mut(pid)
            .unwrap()
            .set_tracking(nilicon_sim::mem::TrackingMode::SoftDirty);
        k.clear_refs(pid).unwrap();
        for i in 0..10 {
            let mut ctx = GuestCtx::new(&mut k, pid, i);
            app.step(&mut ctx).unwrap();
        }
        let dirty = k.mm(pid).unwrap().soft_dirty_count();
        assert!(dirty <= 12, "state page + a few result pages: {dirty}");
    }

    #[test]
    fn resumes_from_guest_state() {
        let mut app = SwaptionsApp::new(Scale::small());
        app.swaptions = 4;
        let (mut k, pid) = host(&app);
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        app.init(&mut ctx).unwrap();
        for i in 0..2 {
            let mut ctx = GuestCtx::new(&mut k, pid, i);
            app.step(&mut ctx).unwrap();
        }
        // Fresh app object (post-failover): continues at swaption 2.
        let mut app2 = SwaptionsApp::new(Scale::small());
        app2.swaptions = 4;
        let mut ctx = GuestCtx::new(&mut k, pid, 10);
        let (next, done, _) = app2.read_state(&mut ctx).unwrap();
        assert_eq!((next, done), (2, 0));
    }
}
