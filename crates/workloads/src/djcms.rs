//! DJCMS-like content management system (§VI).
//!
//! The paper's DJCMS is "a content management system platform that uses
//! Nginx, Python, and MySQL", evaluated with requests to the administrator
//! dashboard page. We model the three-process pipeline: an nginx-stage parse,
//! a Python render over template buffers, and MySQL-stage queries that read
//! table data through the file system and write session state back — giving
//! DJCMS its mixed profile: substantial dirty pages (Table III: 3.0 K/epoch),
//! bursty state sizes (Table IV: 53 KB → 13.3 MB across percentiles), and a
//! runtime-dominated overhead split like Redis (Fig. 3).

use crate::clients::golden_page;
use nilicon_container::{Application, GuestCtx, RequestOutcome};
use nilicon_sim::ids::Fd;
use nilicon_sim::time::Nanos;
use nilicon_sim::{SimError, SimResult, PAGE_SIZE};

/// The DJCMS-like application.
#[derive(Debug)]
pub struct DjcmsApp {
    /// Template/buffer-pool arena offset.
    arena_base: u64,
    /// Arena size in pages.
    pub arena_pages: u64,
    /// Buffer-pool pages dirtied per dashboard request.
    pub churn_pages: u64,
    /// Table pages read per request (through the page cache).
    pub table_reads: u64,
    /// CPU per dashboard request (Table VI stock: ≈89 ms).
    pub cpu_per_req: Nanos,
    /// Response size.
    pub response_len: usize,
    /// Table file size in pages.
    pub table_pages: u64,
    table_fd: Option<Fd>,
    session_fd: Option<Fd>,
    next_arena_slot: u64,
    session_counter: u64,
}

impl DjcmsApp {
    /// Default configuration (the 3-process container is set in the spec).
    pub fn new() -> Self {
        DjcmsApp {
            arena_base: 0,
            arena_pages: 16_000,
            churn_pages: 5_500,
            table_reads: 32,
            cpu_per_req: 85_000_000,
            response_len: 16_384,
            table_pages: 512,
            table_fd: None,
            session_fd: None,
            next_arena_slot: 0,
            session_counter: 0,
        }
    }

    /// Heap pages needed.
    pub fn heap_pages(&self) -> u64 {
        self.arena_pages + 16
    }
}

impl Default for DjcmsApp {
    fn default() -> Self {
        Self::new()
    }
}

impl Application for DjcmsApp {
    fn name(&self) -> &str {
        "djcms"
    }

    fn init(&mut self, ctx: &mut GuestCtx<'_>) -> SimResult<()> {
        // MySQL table file with real rows.
        let fd = ctx.open_or_create("/data/mysql/cms.ibd")?;
        for p in 0..self.table_pages {
            let row = golden_page(p ^ 0xD1CE, 256);
            ctx.pwrite(fd, p * PAGE_SIZE as u64, &row)?;
        }
        ctx.fsync(fd)?;
        self.table_fd = Some(fd);
        self.session_fd = Some(ctx.open_or_create("/data/mysql/sessions.ibd")?);
        Ok(())
    }

    fn handle_request(&mut self, ctx: &mut GuestCtx<'_>, req: &[u8]) -> SimResult<RequestOutcome> {
        if req.len() < 4 {
            return Err(SimError::Invalid("djcms request too short".into()));
        }
        let page_id = u32::from_le_bytes(req[0..4].try_into().unwrap());
        ctx.cpu(self.cpu_per_req);
        let table_fd = self.table_fd.expect("init ran");
        let session_fd = self.session_fd.expect("init ran");

        // MySQL stage: read table pages through the page cache.
        let mut row = vec![0u8; 256];
        let mut acc = 0u64;
        for i in 0..self.table_reads {
            let p = (page_id as u64 * 13 + i * 7) % self.table_pages;
            ctx.pread(table_fd, p * PAGE_SIZE as u64, &mut row)?;
            acc = acc.wrapping_add(row[0] as u64);
        }
        // Session write-back (dirty page-cache entries → DNC tracking).
        self.session_counter += 1;
        let sess_off = (self.session_counter % 256) * 64;
        ctx.pwrite(session_fd, sess_off, &self.session_counter.to_le_bytes())?;

        // Python render stage: template/buffer-pool churn.
        for _ in 0..self.churn_pages {
            let page = self.next_arena_slot % self.arena_pages;
            self.next_arena_slot += 1;
            ctx.heap_write(
                self.arena_base + page * PAGE_SIZE as u64 + (acc % 3500),
                &page_id.to_le_bytes(),
            )?;
        }

        Ok(RequestOutcome {
            response: golden_page(page_id as u64, self.response_len),
        })
    }

    fn recover(&mut self, ctx: &mut GuestCtx<'_>) -> SimResult<()> {
        self.table_fd = Some(ctx.open_or_create("/data/mysql/cms.ibd")?);
        self.session_fd = Some(ctx.open_or_create("/data/mysql/sessions.ibd")?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilicon_container::{ContainerRuntime, ContainerSpec};
    use nilicon_sim::kernel::Kernel;

    fn small() -> DjcmsApp {
        let mut app = DjcmsApp::new();
        app.arena_pages = 128;
        app.churn_pages = 32;
        app.table_pages = 16;
        app
    }

    fn host(app: &DjcmsApp) -> (Kernel, nilicon_sim::ids::Pid) {
        let mut k = Kernel::default();
        let mut spec = ContainerSpec::server("djcms", 10, 8000);
        spec.processes = 3;
        spec.heap_pages = app.heap_pages();
        let c = ContainerRuntime::create(&mut k, &spec).unwrap();
        (k, c.init_pid())
    }

    #[test]
    fn dashboard_response_is_golden() {
        let mut app = small();
        let (mut k, pid) = host(&app);
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        app.init(&mut ctx).unwrap();
        let out = app.handle_request(&mut ctx, &5u32.to_le_bytes()).unwrap();
        assert_eq!(out.response, golden_page(5, app.response_len));
    }

    #[test]
    fn session_writes_dirty_the_fs_cache() {
        let mut app = small();
        let (mut k, pid) = host(&app);
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        app.init(&mut ctx).unwrap();
        // Drain init's DNC state.
        k.fgetfc();
        let mut ctx2 = GuestCtx::new(&mut k, pid, 1);
        app.handle_request(&mut ctx2, &1u32.to_le_bytes()).unwrap();
        let (pages, _) = k.fgetfc();
        assert!(
            !pages.pages.is_empty(),
            "session write left DNC cache state"
        );
    }

    #[test]
    fn table_reads_are_cached_not_redirtied() {
        let mut app = small();
        let (mut k, pid) = host(&app);
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        app.init(&mut ctx).unwrap();
        k.fgetfc();
        let before = k.vfs.cache.dirty_count();
        let mut ctx2 = GuestCtx::new(&mut k, pid, 1);
        app.handle_request(&mut ctx2, &2u32.to_le_bytes()).unwrap();
        // Only the session page is newly dirty; table reads stay clean.
        assert!(k.vfs.cache.dirty_count() <= before + 1);
    }
}
