//! Load generators: YCSB-style (Redis/SSDB), SIEGE-style (web servers), and
//! the echo client for the microbenchmarks. All three double as §VII-A
//! validators — they record what they wrote/sent and flag any inconsistency
//! in what comes back, across failovers.

use crate::guestkv::{value_pattern, KvOp, KvRequest, KvResponse};
use crate::scale::Scale;
use nilicon::traffic::ClientBehavior;
use nilicon_sim::time::Nanos;
use std::collections::HashMap;

fn lcg(rng: &mut u64) -> u64 {
    *rng = rng
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *rng >> 16
}

/// Deterministic "golden copy" page content for web-server responses —
/// servers generate it, SIEGE verifies it byte-for-byte (§VII-A: "the
/// container output is validated by comparison with a golden copy").
pub fn golden_page(seed: u64, len: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(len);
    let mut s = seed ^ 0xC0FFEE;
    for _ in 0..len {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        v.push((s >> 41) as u8);
    }
    v
}

// ----------------------------------------------------------------------
// YCSB
// ----------------------------------------------------------------------

/// YCSB-style batched client (§VI): each request is a batch of operations,
/// 50% reads / 50% writes, over a per-client slot partition. Tracks the
/// version it last wrote per slot and validates every read against the
/// deterministic value pattern.
#[derive(Debug)]
pub struct YcsbBehavior {
    n_clients: usize,
    scale: Scale,
    slots_per_client: u32,
    versions: Vec<HashMap<u32, u64>>,
    expectations: Vec<Vec<(u32, u64)>>,
    rngs: Vec<u64>,
    issued: Vec<u64>,
    max_requests: Option<u64>,
    errors: Vec<String>,
    responses: u64,
}

impl YcsbBehavior {
    /// `n_clients` clients over `scale.kv_records` slots; each client stops
    /// after `max_requests` batches (None = run forever).
    pub fn new(n_clients: usize, scale: Scale, max_requests: Option<u64>) -> Self {
        YcsbBehavior {
            n_clients,
            scale,
            slots_per_client: (scale.kv_records / n_clients.max(1)) as u32,
            versions: vec![HashMap::new(); n_clients],
            expectations: vec![Vec::new(); n_clients],
            rngs: (0..n_clients)
                .map(|i| 0x9E3779B9u64.wrapping_mul(i as u64 + 1))
                .collect(),
            issued: vec![0; n_clients],
            max_requests,
            errors: Vec::new(),
            responses: 0,
        }
    }

    /// Responses received so far.
    pub fn responses(&self) -> u64 {
        self.responses
    }

    /// Validation errors collected.
    pub fn errors(&self) -> &[String] {
        &self.errors
    }
}

impl ClientBehavior for YcsbBehavior {
    fn client_count(&self) -> usize {
        self.n_clients
    }

    fn next_request(&mut self, idx: usize, _now: Nanos) -> Option<Vec<u8>> {
        if let Some(max) = self.max_requests {
            if self.issued[idx] >= max {
                return None;
            }
        }
        self.issued[idx] += 1;
        let base = idx as u32 * self.slots_per_client;
        let mut ops = Vec::with_capacity(self.scale.batch_ops);
        let mut expected = Vec::new();
        for _ in 0..self.scale.batch_ops {
            // Independent draws: correlating op type with slot parity would
            // stop reads from ever observing written slots.
            let is_write = lcg(&mut self.rngs[idx]) & 1 == 0;
            let r = lcg(&mut self.rngs[idx]);
            let slot = base + (r % self.slots_per_client as u64) as u32;
            if is_write {
                // 50% writes (§VI).
                let version = self.versions[idx].get(&slot).copied().unwrap_or(0) + 1;
                self.versions[idx].insert(slot, version);
                ops.push(KvOp::Set {
                    slot,
                    version,
                    value: value_pattern(slot, version, self.scale.value_size),
                });
            } else {
                // 50% reads: expect exactly the version last written on this
                // connection (the store preloads version 0).
                let version = self.versions[idx].get(&slot).copied().unwrap_or(0);
                expected.push((slot, version));
                ops.push(KvOp::Get { slot });
            }
        }
        self.expectations[idx] = expected;
        Some(KvRequest { ops }.encode())
    }

    fn on_response(&mut self, idx: usize, resp: &[u8], _now: Nanos, _latency: Nanos) {
        self.responses += 1;
        let decoded = match KvResponse::decode(resp) {
            Ok(d) => d,
            Err(e) => {
                self.errors
                    .push(format!("client {idx}: undecodable response: {e}"));
                return;
            }
        };
        let expected = std::mem::take(&mut self.expectations[idx]);
        if decoded.gets.len() != expected.len() {
            self.errors.push(format!(
                "client {idx}: {} gets, expected {}",
                decoded.gets.len(),
                expected.len()
            ));
            return;
        }
        for ((slot, version, value), (exp_slot, exp_version)) in
            decoded.gets.iter().zip(expected.iter())
        {
            if slot != exp_slot {
                self.errors
                    .push(format!("client {idx}: slot {slot} != {exp_slot}"));
                continue;
            }
            if version != exp_version {
                self.errors.push(format!(
                    "client {idx}: slot {slot} version {version}, expected {exp_version} — lost update"
                ));
                continue;
            }
            // Version 0 may be an unloaded slot (empty) or a preloaded one.
            let want = value_pattern(*slot, *version, self.scale.value_size);
            if !value.is_empty() && *value != want {
                self.errors
                    .push(format!("client {idx}: slot {slot} value corrupt"));
            }
        }
    }

    fn verify(&self) -> Result<(), String> {
        if self.errors.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "{} error(s); first: {}",
                self.errors.len(),
                self.errors[0]
            ))
        }
    }
}

// ----------------------------------------------------------------------
// SIEGE
// ----------------------------------------------------------------------

/// SIEGE-style concurrent web client (§VI): each client requests pages by id
/// and validates the response against the golden copy.
#[derive(Debug)]
pub struct SiegeBehavior {
    n_clients: usize,
    page_ids: u32,
    response_len: usize,
    /// Skip the first N response bytes when comparing (dynamic headers —
    /// Node prefixes a hit count).
    pub skip_prefix: usize,
    rngs: Vec<u64>,
    outstanding: Vec<Option<u32>>,
    issued: Vec<u64>,
    max_requests: Option<u64>,
    errors: Vec<String>,
    responses: u64,
}

impl SiegeBehavior {
    /// `n_clients` clients over `page_ids` distinct pages whose golden size
    /// is `response_len`.
    pub fn new(
        n_clients: usize,
        page_ids: u32,
        response_len: usize,
        max_requests: Option<u64>,
    ) -> Self {
        SiegeBehavior {
            n_clients,
            page_ids,
            response_len,
            skip_prefix: 0,
            rngs: (0..n_clients)
                .map(|i| 0xABCD_EF12u64.wrapping_mul(i as u64 + 3))
                .collect(),
            outstanding: vec![None; n_clients],
            issued: vec![0; n_clients],
            max_requests,
            errors: Vec::new(),
            responses: 0,
        }
    }

    /// Responses received.
    pub fn responses(&self) -> u64 {
        self.responses
    }
}

impl ClientBehavior for SiegeBehavior {
    fn client_count(&self) -> usize {
        self.n_clients
    }

    fn next_request(&mut self, idx: usize, _now: Nanos) -> Option<Vec<u8>> {
        if let Some(max) = self.max_requests {
            if self.issued[idx] >= max {
                return None;
            }
        }
        self.issued[idx] += 1;
        let id = (lcg(&mut self.rngs[idx]) % self.page_ids as u64) as u32;
        self.outstanding[idx] = Some(id);
        Some(id.to_le_bytes().to_vec())
    }

    fn on_response(&mut self, idx: usize, resp: &[u8], _now: Nanos, _latency: Nanos) {
        self.responses += 1;
        let Some(id) = self.outstanding[idx].take() else {
            self.errors
                .push(format!("client {idx}: unexpected response"));
            return;
        };
        let golden = golden_page(id as u64, self.response_len);
        if resp.len() != golden.len() || resp[self.skip_prefix..] != golden[self.skip_prefix..] {
            self.errors
                .push(format!("client {idx}: page {id} differs from golden copy"));
        }
    }

    fn verify(&self) -> Result<(), String> {
        if self.errors.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "{} golden-copy mismatch(es); first: {}",
                self.errors.len(),
                self.errors[0]
            ))
        }
    }
}

// ----------------------------------------------------------------------
// Echo
// ----------------------------------------------------------------------

/// Echo client for `Net` and the stack-echo stressor: random-size payloads,
/// byte-exact verification, broken connections show up as missing echoes.
#[derive(Debug)]
pub struct EchoBehavior {
    n_clients: usize,
    min_len: usize,
    max_len: usize,
    rngs: Vec<u64>,
    outstanding: Vec<Option<Vec<u8>>>,
    issued: Vec<u64>,
    max_requests: Option<u64>,
    errors: Vec<String>,
    responses: u64,
}

impl EchoBehavior {
    /// Clients sending payloads of `min_len..=max_len` bytes.
    pub fn new(
        n_clients: usize,
        min_len: usize,
        max_len: usize,
        max_requests: Option<u64>,
    ) -> Self {
        assert!(min_len <= max_len && min_len > 0);
        EchoBehavior {
            n_clients,
            min_len,
            max_len,
            rngs: (0..n_clients)
                .map(|i| 0x1234_5678u64.wrapping_mul(i as u64 + 7))
                .collect(),
            outstanding: vec![None; n_clients],
            issued: vec![0; n_clients],
            max_requests,
            errors: Vec::new(),
            responses: 0,
        }
    }

    /// Responses received.
    pub fn responses(&self) -> u64 {
        self.responses
    }
}

impl ClientBehavior for EchoBehavior {
    fn client_count(&self) -> usize {
        self.n_clients
    }

    fn next_request(&mut self, idx: usize, _now: Nanos) -> Option<Vec<u8>> {
        if let Some(max) = self.max_requests {
            if self.issued[idx] >= max {
                return None;
            }
        }
        self.issued[idx] += 1;
        let len =
            self.min_len + (lcg(&mut self.rngs[idx]) as usize) % (self.max_len - self.min_len + 1);
        let mut payload = Vec::with_capacity(len);
        for _ in 0..len {
            payload.push((lcg(&mut self.rngs[idx]) & 0xFF) as u8);
        }
        self.outstanding[idx] = Some(payload.clone());
        Some(payload)
    }

    fn on_response(&mut self, idx: usize, resp: &[u8], _now: Nanos, _latency: Nanos) {
        self.responses += 1;
        match self.outstanding[idx].take() {
            Some(sent) if sent == resp => {}
            Some(_) => self.errors.push(format!("client {idx}: echo corrupted")),
            None => self.errors.push(format!("client {idx}: unexpected echo")),
        }
    }

    fn verify(&self) -> Result<(), String> {
        if self.errors.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "{} echo error(s); first: {}",
                self.errors.len(),
                self.errors[0]
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ycsb_builds_half_and_half_batches() {
        let scale = Scale {
            batch_ops: 200,
            ..Scale::small()
        };
        let mut b = YcsbBehavior::new(2, scale, None);
        let req = b.next_request(0, 0).unwrap();
        let decoded = KvRequest::decode(&req).unwrap();
        assert_eq!(decoded.ops.len(), 200);
        let sets = decoded
            .ops
            .iter()
            .filter(|o| matches!(o, KvOp::Set { .. }))
            .count();
        assert!((60..=140).contains(&sets), "≈50% writes, got {sets}");
        // Client 0 only touches its own partition.
        for op in &decoded.ops {
            let slot = match op {
                KvOp::Set { slot, .. } | KvOp::Get { slot } => *slot,
            };
            assert!(slot < scale.kv_records as u32 / 2);
        }
    }

    #[test]
    fn ycsb_validates_versions() {
        let scale = Scale {
            batch_ops: 10,
            ..Scale::small()
        };
        let mut b = YcsbBehavior::new(1, scale, None);
        let req = KvRequest::decode(&b.next_request(0, 0).unwrap()).unwrap();
        // Build the CORRECT response.
        let mut resp = KvResponse::default();
        for op in &req.ops {
            match op {
                KvOp::Set { .. } => resp.sets_acked += 1,
                KvOp::Get { slot } => {
                    let version = b.versions[0].get(slot).copied().unwrap_or(0);
                    resp.gets.push((
                        *slot,
                        version,
                        value_pattern(*slot, version, scale.value_size),
                    ));
                }
            }
        }
        b.on_response(0, &resp.encode(), 0, 0);
        assert!(b.verify().is_ok());

        // A stale-version response must be flagged as a lost update.
        let req2 = KvRequest::decode(&b.next_request(0, 0).unwrap()).unwrap();
        let mut bad = KvResponse::default();
        for op in &req2.ops {
            match op {
                KvOp::Set { .. } => bad.sets_acked += 1,
                KvOp::Get { slot } => bad.gets.push((*slot, 9999, vec![])),
            }
        }
        b.on_response(0, &bad.encode(), 0, 0);
        assert!(b.verify().is_err());
    }

    #[test]
    fn ycsb_respects_max_requests() {
        let mut b = YcsbBehavior::new(1, Scale::small(), Some(2));
        assert!(b.next_request(0, 0).is_some());
        assert!(b.next_request(0, 0).is_some());
        assert!(b.next_request(0, 0).is_none());
    }

    #[test]
    fn siege_golden_copy_check() {
        let mut s = SiegeBehavior::new(1, 10, 128, None);
        let req = s.next_request(0, 0).unwrap();
        let id = u32::from_le_bytes(req[0..4].try_into().unwrap());
        s.on_response(0, &golden_page(id as u64, 128), 0, 0);
        assert!(s.verify().is_ok());
        let req2 = s.next_request(0, 0).unwrap();
        let _ = req2;
        s.on_response(0, b"not the golden page, wrong length too", 0, 0);
        assert!(s.verify().is_err());
    }

    #[test]
    fn siege_skip_prefix_tolerates_dynamic_header() {
        let mut s = SiegeBehavior::new(1, 10, 64, None);
        s.skip_prefix = 4;
        let req = s.next_request(0, 0).unwrap();
        let id = u32::from_le_bytes(req[0..4].try_into().unwrap());
        let mut page = golden_page(id as u64, 64);
        page[0..4].copy_from_slice(&123u32.to_le_bytes()); // dynamic hits field
        s.on_response(0, &page, 0, 0);
        assert!(s.verify().is_ok());
    }

    #[test]
    fn echo_detects_corruption() {
        let mut e = EchoBehavior::new(1, 10, 20, None);
        let sent = e.next_request(0, 0).unwrap();
        e.on_response(0, &sent, 0, 0);
        assert!(e.verify().is_ok());
        let sent2 = e.next_request(0, 0).unwrap();
        let mut corrupt = sent2.clone();
        corrupt[0] ^= 0xFF;
        e.on_response(0, &corrupt, 0, 0);
        assert!(e.verify().is_err());
    }

    #[test]
    fn echo_sizes_within_bounds() {
        let mut e = EchoBehavior::new(1, 5, 9, None);
        for _ in 0..50 {
            let p = e.next_request(0, 0).unwrap();
            assert!((5..=9).contains(&p.len()));
            e.on_response(0, &p, 0, 0);
        }
    }

    #[test]
    fn golden_page_deterministic() {
        assert_eq!(golden_page(1, 100), golden_page(1, 100));
        assert_ne!(golden_page(1, 100), golden_page(2, 100));
    }
}
