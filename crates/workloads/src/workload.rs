//! Workload bundles: everything a harness needs to host one benchmark.

use crate::clients::{EchoBehavior, SiegeBehavior, YcsbBehavior};
use crate::djcms::DjcmsApp;
use crate::lighttpd::LighttpdApp;
use crate::micro::{NetEchoApp, StackEchoApp, StressFsApp};
use crate::node::NodeApp;
use crate::redis::RedisApp;
use crate::scale::Scale;
use crate::ssdb::SsdbApp;
use crate::streamcluster::StreamclusterApp;
use crate::swaptions::SwaptionsApp;
use nilicon::traffic::ClientBehavior;
use nilicon_container::{Application, ContainerSpec};

/// A ready-to-run benchmark bundle.
pub struct Workload {
    /// Benchmark name (paper's labels).
    pub name: &'static str,
    /// Container spec (processes, threads, footprint, port).
    pub spec: ContainerSpec,
    /// The application.
    pub app: Box<dyn Application>,
    /// The load generator (None for batch workloads).
    pub behavior: Option<Box<dyn ClientBehavior>>,
    /// Usable cores (Table V "Active" row; drives the exec budget).
    pub parallelism: f64,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("parallelism", &self.parallelism)
            .finish()
    }
}

/// Redis: memory-stressing NoSQL, no persistence (§VI).
pub fn redis(scale: Scale, clients: usize, max_requests: Option<u64>) -> Workload {
    let app = RedisApp::new(scale, true);
    let mut spec = ContainerSpec::server("redis", 10, 6379);
    spec.threads_per_process = 4;
    spec.mapped_files = 28;
    spec.heap_pages = app.heap_pages();
    Workload {
        name: "Redis",
        spec,
        app: Box::new(app),
        behavior: Some(Box::new(YcsbBehavior::new(clients, scale, max_requests))),
        parallelism: 1.0,
    }
}

/// SSDB: disk-stressing NoSQL, full persistence (§VI).
pub fn ssdb(scale: Scale, clients: usize, max_requests: Option<u64>) -> Workload {
    let app = SsdbApp::new(scale);
    let mut spec = ContainerSpec::server("ssdb", 10, 8888);
    spec.threads_per_process = 8;
    spec.mapped_files = 32;
    spec.heap_pages = app.heap_pages();
    spec.threads_in_syscall = 4;
    Workload {
        name: "SSDB",
        spec,
        app: Box::new(app),
        behavior: Some(Box::new(YcsbBehavior::new(clients, scale, max_requests))),
        parallelism: 1.7,
    }
}

/// Node: socket-heavy search/render service; 128 clients to saturate (§VI).
pub fn node(scale: Scale, clients: usize, max_requests: Option<u64>) -> Workload {
    let app = NodeApp::new(scale);
    let mut spec = ContainerSpec::server("node", 10, 3000);
    spec.threads_per_process = 4;
    spec.mapped_files = 40;
    spec.heap_pages = app.heap_pages();
    spec.threads_in_syscall = 3;
    let mut behavior = SiegeBehavior::new(clients, 4096, app.response_len, max_requests);
    behavior.skip_prefix = 4; // dynamic hit-count prefix
    Workload {
        name: "Node",
        spec,
        app: Box::new(app),
        behavior: Some(Box::new(behavior)),
        parallelism: 1.0,
    }
}

/// Lighttpd: CPU-heavy PHP watermarking across `processes` workers (§VI).
pub fn lighttpd(processes: usize, clients: usize, max_requests: Option<u64>) -> Workload {
    let app = LighttpdApp::new();
    let mut spec = ContainerSpec::server("lighttpd", 10, 80);
    spec.processes = processes;
    spec.threads_per_process = 1;
    spec.mapped_files = 22;
    spec.heap_pages = app.heap_pages();
    let behavior = SiegeBehavior::new(clients, 1024, app.response_len, max_requests);
    Workload {
        name: "Lighttpd",
        spec,
        app: Box::new(app),
        behavior: Some(Box::new(behavior)),
        parallelism: processes as f64 * 0.99,
    }
}

/// DJCMS: nginx + Python + MySQL dashboard pipeline (§VI).
pub fn djcms(clients: usize, max_requests: Option<u64>) -> Workload {
    let app = DjcmsApp::new();
    let mut spec = ContainerSpec::server("djcms", 10, 8000);
    spec.processes = 3;
    spec.threads_per_process = 2;
    spec.mapped_files = 64;
    spec.heap_pages = app.heap_pages();
    spec.threads_in_syscall = 2;
    let behavior = SiegeBehavior::new(clients, 256, app.response_len, max_requests);
    Workload {
        name: "DJCMS",
        spec,
        app: Box::new(app),
        behavior: Some(Box::new(behavior)),
        parallelism: 1.41,
    }
}

/// PARSEC streamcluster with `threads` worker threads (§VI, §VII-C).
pub fn streamcluster(scale: Scale, threads: usize) -> Workload {
    let app = StreamclusterApp::new(scale);
    let mut spec = ContainerSpec::batch("streamcluster", 10);
    spec.threads_per_process = threads;
    spec.mapped_files = 12;
    spec.heap_pages = app.heap_pages();
    Workload {
        name: "Streamcluster",
        spec,
        app: Box::new(app),
        behavior: None,
        parallelism: threads as f64 * 0.98,
    }
}

/// PARSEC swaptions (§VI).
pub fn swaptions(scale: Scale, threads: usize) -> Workload {
    let app = SwaptionsApp::new(scale);
    let mut spec = ContainerSpec::batch("swaptions", 10);
    spec.threads_per_process = threads;
    spec.mapped_files = 10;
    spec.heap_pages = app.heap_pages();
    Workload {
        name: "Swaptions",
        spec,
        app: Box::new(app),
        behavior: None,
        parallelism: threads as f64 * 0.99,
    }
}

/// `Net` echo microbenchmark (§VII-B): 10-byte echo.
pub fn net_echo(clients: usize, max_requests: Option<u64>) -> Workload {
    let mut spec = ContainerSpec::server("net", 10, 7777);
    spec.threads_per_process = 1;
    spec.mapped_files = 6;
    spec.heap_pages = 64;
    Workload {
        name: "Net",
        spec,
        app: Box::new(NetEchoApp::new()),
        behavior: Some(Box::new(EchoBehavior::new(clients, 10, 10, max_requests))),
        parallelism: 1.0,
    }
}

/// Stack-echo validation microbenchmark (§VII-A): random-size echoes staged
/// through guest stack memory.
pub fn stack_echo(clients: usize, max_len: usize, max_requests: Option<u64>) -> Workload {
    let mut spec = ContainerSpec::server("stack-echo", 10, 7778);
    spec.threads_per_process = 2;
    spec.mapped_files = 6;
    spec.heap_pages = 64;
    Workload {
        name: "StackEcho",
        spec,
        app: Box::new(StackEchoApp::new()),
        behavior: Some(Box::new(EchoBehavior::new(
            clients,
            1,
            max_len.min(StackEchoApp::MAX_MSG),
            max_requests,
        ))),
        parallelism: 1.0,
    }
}

/// File/disk validation microbenchmark (§VII-A): random read/write mix with
/// in-guest mirror verification.
pub fn stress_fs(file_size: u64, max_ops: Option<u64>) -> Workload {
    let app = StressFsApp::new(file_size, max_ops);
    let mut spec = ContainerSpec::batch("stress-fs", 10);
    spec.threads_per_process = 1;
    spec.mapped_files = 6;
    spec.heap_pages = app.heap_pages();
    Workload {
        name: "StressFs",
        spec,
        app: Box::new(app),
        behavior: None,
        parallelism: 1.0,
    }
}

/// The five server benchmarks at a given scale (Fig. 3's left-hand set uses
/// `streamcluster`/`swaptions` too — see [`all_workloads`]).
pub fn all_server_workloads(scale: Scale, max_requests: Option<u64>) -> Vec<Workload> {
    vec![
        redis(scale, 8, max_requests),
        ssdb(scale, 8, max_requests),
        node(scale, 128, max_requests),
        lighttpd(4, 32, max_requests),
        djcms(16, max_requests),
    ]
}

/// All seven paper benchmarks in Fig. 3 order.
pub fn all_workloads(scale: Scale, max_requests: Option<u64>) -> Vec<Workload> {
    let mut v = vec![swaptions(scale, 4), streamcluster(scale, 4)];
    v.extend(all_server_workloads(scale, max_requests));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundles_are_consistent() {
        for w in all_workloads(Scale::small(), Some(1)) {
            assert!(w.parallelism > 0.5, "{}", w.name);
            assert_eq!(w.behavior.is_some(), w.app.is_server(), "{}", w.name);
            if w.app.is_server() {
                assert!(w.spec.listen_port.is_some(), "{}", w.name);
            }
            assert!(w.spec.heap_pages > 0);
        }
    }

    #[test]
    fn fig3_order_and_count() {
        let all = all_workloads(Scale::small(), None);
        let names: Vec<&str> = all.iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                "Swaptions",
                "Streamcluster",
                "Redis",
                "SSDB",
                "Node",
                "Lighttpd",
                "DJCMS"
            ]
        );
    }

    #[test]
    fn node_uses_128_clients() {
        let w = node(Scale::small(), 128, None);
        assert_eq!(w.behavior.as_ref().unwrap().client_count(), 128);
    }

    #[test]
    fn lighttpd_process_sweep_shapes() {
        for n in [1, 4, 8] {
            let w = lighttpd(n, 8, None);
            assert_eq!(w.spec.processes, n);
            assert!((w.parallelism - n as f64 * 0.99).abs() < 1e-9);
        }
    }
}
