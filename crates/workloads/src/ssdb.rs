//! SSDB-like persistent NoSQL store (§VI).
//!
//! Configured as the paper configures SSDB: **full persistence** — every set
//! is written through the file system to disk, stressing the page cache, the
//! DNC tracking (§III), and the DRBD replication path. The higher per-op
//! cost (LSM write path + syncs) gives SSDB its 93 ms stock batch latency
//! (Table VI) and moderate dirty-page rate (Table III: 590 pages/epoch).

use crate::guestkv::{GuestKv, KvOp, KvRequest, KvResponse};
use crate::scale::Scale;
use nilicon_container::{Application, GuestCtx, RequestOutcome};
use nilicon_sim::ids::Fd;
use nilicon_sim::time::Nanos;
use nilicon_sim::SimResult;

/// The SSDB-like application.
#[derive(Debug)]
pub struct SsdbApp {
    kv: GuestKv,
    scale: Scale,
    /// CPU per operation (LSM path).
    pub cpu_per_op: Nanos,
    /// Aux pages per set (memtable + index churn).
    pub aux_per_set: u64,
    /// fsync every N sets (write-ahead durability).
    pub fsync_every: u64,
    db_fd: Option<Fd>,
    sets_since_sync: u64,
}

impl SsdbApp {
    /// Build at `scale`.
    pub fn new(scale: Scale) -> Self {
        let kv = GuestKv::layout(0, scale.kv_records as u32, scale.value_size, 1024);
        SsdbApp {
            kv,
            scale,
            cpu_per_op: 55_000,
            aux_per_set: 1,
            fsync_every: 64,
            db_fd: None,
            sets_since_sync: 0,
        }
    }

    /// Heap pages a container hosting this app needs.
    pub fn heap_pages(&self) -> u64 {
        self.kv.heap_pages_needed() + 64
    }

    fn file_off(&self, slot: u32) -> u64 {
        slot as u64 * GuestKv::slot_size_for(self.scale.value_size)
    }
}

impl Application for SsdbApp {
    fn name(&self) -> &str {
        "ssdb"
    }

    fn init(&mut self, ctx: &mut GuestCtx<'_>) -> SimResult<()> {
        let fd = ctx.open_or_create("/data/ssdb.db")?;
        self.db_fd = Some(fd);
        Ok(())
    }

    fn handle_request(&mut self, ctx: &mut GuestCtx<'_>, req: &[u8]) -> SimResult<RequestOutcome> {
        let fd = self.db_fd.expect("init ran");
        let request = KvRequest::decode(req)?;
        let mut resp = KvResponse::default();
        for op in &request.ops {
            ctx.cpu(self.cpu_per_op);
            match op {
                KvOp::Set {
                    slot,
                    version,
                    value,
                } => {
                    // Memtable (guest memory) + durable file write.
                    self.kv.set(ctx, *slot, *version, value)?;
                    self.kv
                        .aux_touch(ctx, *slot as u64 ^ version, self.aux_per_set)?;
                    let mut rec = version.to_le_bytes().to_vec();
                    rec.extend_from_slice(&(value.len() as u32).to_le_bytes());
                    rec.extend_from_slice(value);
                    ctx.pwrite(fd, self.file_off(*slot), &rec)?;
                    self.sets_since_sync += 1;
                    if self.sets_since_sync >= self.fsync_every {
                        ctx.fsync(fd)?;
                        self.sets_since_sync = 0;
                    }
                    resp.sets_acked += 1;
                }
                KvOp::Get { slot } => {
                    let (version, value) = self.kv.get(ctx, *slot)?;
                    resp.gets.push((*slot, version, value));
                }
            }
        }
        Ok(RequestOutcome {
            response: resp.encode(),
        })
    }

    fn recover(&mut self, ctx: &mut GuestCtx<'_>) -> SimResult<()> {
        // Re-open the database file in the restored container (fd table was
        // restored, but the app object re-resolves its handle like a process
        // whose library state came back from its own memory).
        self.db_fd = Some(ctx.open_or_create("/data/ssdb.db")?);
        self.sets_since_sync = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guestkv::value_pattern;
    use nilicon_container::{ContainerRuntime, ContainerSpec};
    use nilicon_sim::kernel::Kernel;

    fn host(app: &SsdbApp) -> (Kernel, nilicon_sim::ids::Pid) {
        let mut k = Kernel::default();
        let mut spec = ContainerSpec::server("ssdb", 10, 8888);
        spec.heap_pages = app.heap_pages();
        let c = ContainerRuntime::create(&mut k, &spec).unwrap();
        (k, c.init_pid())
    }

    #[test]
    fn sets_reach_the_page_cache_and_disk() {
        let mut app = SsdbApp::new(Scale::small());
        app.fsync_every = 2;
        let (mut k, pid) = host(&app);
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        app.init(&mut ctx).unwrap();
        let req = KvRequest {
            ops: vec![
                KvOp::Set {
                    slot: 1,
                    version: 1,
                    value: value_pattern(1, 1, 100),
                },
                KvOp::Set {
                    slot: 2,
                    version: 1,
                    value: value_pattern(2, 1, 100),
                },
            ],
        };
        app.handle_request(&mut ctx, &req.encode()).unwrap();
        assert!(
            k.vfs.disk.pending_writes() > 0,
            "fsync pushed data to the replicated device"
        );
    }

    #[test]
    fn get_after_set_is_consistent() {
        let mut app = SsdbApp::new(Scale::small());
        let (mut k, pid) = host(&app);
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        app.init(&mut ctx).unwrap();
        let req = KvRequest {
            ops: vec![
                KvOp::Set {
                    slot: 7,
                    version: 3,
                    value: value_pattern(7, 3, 777),
                },
                KvOp::Get { slot: 7 },
            ],
        };
        let out = app.handle_request(&mut ctx, &req.encode()).unwrap();
        let resp = KvResponse::decode(&out.response).unwrap();
        assert_eq!(resp.gets[0], (7, 3, value_pattern(7, 3, 777)));
    }

    #[test]
    fn ssdb_is_much_slower_per_op_than_redis() {
        let ssdb = SsdbApp::new(Scale::small());
        let redis = crate::redis::RedisApp::new(Scale::small(), false);
        assert!(
            ssdb.cpu_per_op > 10 * redis.cpu_per_op,
            "Table VI: 93ms vs 3.1ms batches"
        );
    }

    #[test]
    fn recover_reopens_database() {
        let mut app = SsdbApp::new(Scale::small());
        let (mut k, pid) = host(&app);
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        app.init(&mut ctx).unwrap();
        let old = app.db_fd;
        let mut ctx2 = GuestCtx::new(&mut k, pid, 1);
        app.recover(&mut ctx2).unwrap();
        assert!(app.db_fd.is_some());
        let _ = old;
    }
}
