//! The microbenchmarks: `Net` (§VII-B) and the two §VII-A validation
//! stressors.

use nilicon_container::{Application, GuestCtx, RequestOutcome, StepOutcome};
use nilicon_sim::ids::Fd;
use nilicon_sim::time::Nanos;
use nilicon_sim::{SimError, SimResult, PAGE_SIZE};

// ----------------------------------------------------------------------
// Net: the recovery-latency microbenchmark (§VII-B)
// ----------------------------------------------------------------------

/// `Net`: "the client sends 10 bytes to the server and the server responds
/// with the same 10 bytes" — the minimal-state workload of Table II.
#[derive(Debug, Default)]
pub struct NetEchoApp {
    requests: u64,
}

impl NetEchoApp {
    /// New instance.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Application for NetEchoApp {
    fn name(&self) -> &str {
        "net"
    }

    fn init(&mut self, _ctx: &mut GuestCtx<'_>) -> SimResult<()> {
        Ok(())
    }

    fn handle_request(&mut self, ctx: &mut GuestCtx<'_>, req: &[u8]) -> SimResult<RequestOutcome> {
        ctx.cpu(3_000);
        self.requests += 1;
        // Stage through guest memory so the echo path is checkpointable.
        ctx.heap_write(0, req)?;
        let mut back = vec![0u8; req.len()];
        ctx.heap_read(0, &mut back)?;
        Ok(RequestOutcome { response: back })
    }
}

// ----------------------------------------------------------------------
// Stack echo: §VII-A microbenchmark 2
// ----------------------------------------------------------------------

/// "A client sends a message of random size to the server, the server saves
/// it on its stack and then sends it back" — stresses the kernel network
/// stack and the application stack in memory. The paper uses 1 B - 2 MB
/// messages; our thread stacks are 128 KiB, so the driver caps messages at
/// [`StackEchoApp::MAX_MSG`] (documented substitution).
#[derive(Debug, Default)]
pub struct StackEchoApp {
    echoes: u64,
}

impl StackEchoApp {
    /// Maximum message size the stack buffer holds.
    pub const MAX_MSG: usize = 96 * 1024;

    /// New instance.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Application for StackEchoApp {
    fn name(&self) -> &str {
        "stack-echo"
    }

    fn init(&mut self, _ctx: &mut GuestCtx<'_>) -> SimResult<()> {
        Ok(())
    }

    fn handle_request(&mut self, ctx: &mut GuestCtx<'_>, req: &[u8]) -> SimResult<RequestOutcome> {
        if req.len() > Self::MAX_MSG {
            return Err(SimError::Invalid("message exceeds stack buffer".into()));
        }
        ctx.cpu(2_000 + req.len() as Nanos / 8);
        // Save on the stack (stack 0), then read back and echo — the bytes
        // on the wire literally transit guest stack memory.
        ctx.stack_write(0, 0, req)?;
        let mut back = vec![0u8; req.len()];
        ctx.stack_read(0, 0, &mut back)?;
        self.echoes += 1;
        Ok(RequestOutcome { response: back })
    }
}

// ----------------------------------------------------------------------
// File/disk stressor: §VII-A microbenchmark 1
// ----------------------------------------------------------------------

/// "Performs a mix of writes and reads of random size (1-8192 bytes) to
/// random locations in a file. An error is flagged if the data returned by a
/// read differs from the data written to that location earlier."
///
/// The expected-contents mirror lives in **guest heap memory**, so a failover
/// rolls the mirror and the file back together — exactly the property that
/// makes this a replication-correctness stressor rather than a torn-state
/// false alarm.
#[derive(Debug)]
pub struct StressFsApp {
    /// File size in bytes.
    pub file_size: u64,
    /// fsync every N operations (exercises DRBD).
    pub fsync_every: u64,
    /// Stop after this many operations (None = run forever).
    pub max_ops: Option<u64>,
    fd: Option<Fd>,
    /// Errors detected (checked by the validation harness).
    pub errors: u64,
}

/// Guest heap layout: state page (rng + op counter), then the mirror region.
const STATE: u64 = 0;
const MIRROR: u64 = PAGE_SIZE as u64;

impl StressFsApp {
    /// New stressor over a file of `file_size` bytes.
    pub fn new(file_size: u64, max_ops: Option<u64>) -> Self {
        StressFsApp {
            file_size,
            fsync_every: 32,
            max_ops,
            fd: None,
            errors: 0,
        }
    }

    /// Heap pages needed.
    pub fn heap_pages(&self) -> u64 {
        1 + self.file_size.div_ceil(PAGE_SIZE as u64) + 4
    }

    fn read_state(&self, ctx: &mut GuestCtx<'_>) -> SimResult<(u64, u64)> {
        let mut buf = [0u8; 16];
        ctx.heap_read(STATE, &mut buf)?;
        Ok((
            u64::from_le_bytes(buf[0..8].try_into().unwrap()),
            u64::from_le_bytes(buf[8..16].try_into().unwrap()),
        ))
    }

    fn write_state(&self, ctx: &mut GuestCtx<'_>, rng: u64, ops: u64) -> SimResult<()> {
        let mut buf = [0u8; 16];
        buf[0..8].copy_from_slice(&rng.to_le_bytes());
        buf[8..16].copy_from_slice(&ops.to_le_bytes());
        ctx.heap_write(STATE, &buf)
    }
}

fn lcg(rng: &mut u64) -> u64 {
    *rng = rng
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *rng >> 16
}

impl Application for StressFsApp {
    fn name(&self) -> &str {
        "stress-fs"
    }

    fn is_server(&self) -> bool {
        false
    }

    fn init(&mut self, ctx: &mut GuestCtx<'_>) -> SimResult<()> {
        self.fd = Some(ctx.open_or_create("/data/stress.dat")?);
        self.write_state(ctx, 0x2545F4914F6CDD1D, 0)
    }

    fn step(&mut self, ctx: &mut GuestCtx<'_>) -> SimResult<StepOutcome> {
        let fd = self.fd.expect("init ran");
        let (mut rng, ops) = self.read_state(ctx)?;
        if let Some(max) = self.max_ops {
            if ops >= max {
                return Ok(StepOutcome { done: true });
            }
        }
        ctx.cpu(8_000);
        let len = (lcg(&mut rng) % 8192 + 1) as usize; // 1-8192 bytes (§VII-A)
        let off = lcg(&mut rng) % (self.file_size - len as u64);
        let is_write = lcg(&mut rng).is_multiple_of(2);

        if is_write {
            let fill = (lcg(&mut rng) & 0xFF) as u8;
            let data = vec![fill ^ (off as u8); len];
            ctx.pwrite(fd, off, &data)?;
            ctx.heap_write(MIRROR + off, &data)?;
            if ops % self.fsync_every == self.fsync_every - 1 {
                ctx.fsync(fd)?;
            }
        } else {
            let mut from_file = vec![0u8; len];
            let n = ctx.pread(fd, off, &mut from_file)?;
            let mut expected = vec![0u8; len];
            ctx.heap_read(MIRROR + off, &mut expected)?;
            // Short reads (never-written tail) read as zeros in the mirror too.
            if from_file[..n] != expected[..n] || !expected[n..].iter().all(|&b| b == 0) {
                self.errors += 1;
            }
        }
        self.write_state(ctx, rng, ops + 1)?;
        Ok(StepOutcome { done: false })
    }

    fn recover(&mut self, ctx: &mut GuestCtx<'_>) -> SimResult<()> {
        self.fd = Some(ctx.open_or_create("/data/stress.dat")?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilicon_container::{ContainerRuntime, ContainerSpec};
    use nilicon_sim::kernel::Kernel;

    fn host(pages: u64) -> (Kernel, nilicon_sim::ids::Pid) {
        let mut k = Kernel::default();
        let mut spec = ContainerSpec::server("micro", 10, 7000);
        spec.heap_pages = pages;
        let c = ContainerRuntime::create(&mut k, &spec).unwrap();
        (k, c.init_pid())
    }

    #[test]
    fn net_echo_roundtrip() {
        let mut app = NetEchoApp::new();
        let (mut k, pid) = host(64);
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        let out = app.handle_request(&mut ctx, b"0123456789").unwrap();
        assert_eq!(out.response, b"0123456789");
    }

    #[test]
    fn stack_echo_roundtrip_and_cap() {
        let mut app = StackEchoApp::new();
        let (mut k, pid) = host(64);
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        let msg = vec![0xAB; 50_000];
        let out = app.handle_request(&mut ctx, &msg).unwrap();
        assert_eq!(out.response, msg);
        let too_big = vec![0u8; StackEchoApp::MAX_MSG + 1];
        let mut ctx2 = GuestCtx::new(&mut k, pid, 1);
        assert!(app.handle_request(&mut ctx2, &too_big).is_err());
    }

    #[test]
    fn stress_fs_detects_no_errors_in_healthy_run() {
        let mut app = StressFsApp::new(64 * 1024, Some(300));
        let (mut k, pid) = host(app.heap_pages());
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        app.init(&mut ctx).unwrap();
        let mut i = 0;
        loop {
            let mut ctx = GuestCtx::new(&mut k, pid, i);
            if app.step(&mut ctx).unwrap().done {
                break;
            }
            i += 1;
        }
        assert_eq!(app.errors, 0, "read-after-write consistency holds");
        assert!(k.vfs.disk.writes_total() > 0, "fsyncs reached the device");
    }

    #[test]
    fn stress_fs_catches_real_corruption() {
        // Corrupt the file behind the app's back: errors must be flagged.
        let mut app = StressFsApp::new(32 * 1024, Some(2000));
        app.fsync_every = u64::MAX; // keep it in the cache
        let (mut k, pid) = host(app.heap_pages());
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        app.init(&mut ctx).unwrap();
        // Do some writes first.
        for i in 0..200 {
            let mut ctx = GuestCtx::new(&mut k, pid, i);
            app.step(&mut ctx).unwrap();
        }
        // Sabotage: flip bytes throughout the file.
        let ino = k.vfs.lookup("/data/stress.dat").unwrap();
        for page in 0..8 {
            k.vfs
                .pwrite(ino, page * 4096 + 7, &[0x5A; 2048], 0)
                .unwrap();
        }
        for i in 200..2000 {
            let mut ctx = GuestCtx::new(&mut k, pid, i);
            app.step(&mut ctx).unwrap();
        }
        assert!(app.errors > 0, "corruption must be detected");
    }

    #[test]
    fn stress_fs_state_lives_in_guest() {
        let mut app = StressFsApp::new(32 * 1024, None);
        let (mut k, pid) = host(app.heap_pages());
        let mut ctx = GuestCtx::new(&mut k, pid, 0);
        app.init(&mut ctx).unwrap();
        for i in 0..10 {
            let mut ctx = GuestCtx::new(&mut k, pid, i);
            app.step(&mut ctx).unwrap();
        }
        let mut ctx = GuestCtx::new(&mut k, pid, 99);
        let (_, ops) = app.read_state(&mut ctx).unwrap();
        assert_eq!(ops, 10, "op counter persisted in guest memory");
    }
}
