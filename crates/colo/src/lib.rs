//! # nilicon-colo — COLO-style active replication baseline
//!
//! COLO (Dong et al., SoCC'13) is the paper's §VIII design alternative to
//! Remus-style passive replication: the backup **actively executes** the same
//! inputs as the primary; outgoing packets from the two replicas are
//! *compared*, and
//!
//! * on a **match**, one copy is released immediately — the only delay is the
//!   comparison itself (far below Remus/NiLiCon's buffering delay);
//! * on a **mismatch**, the replicas have diverged and a full state
//!   synchronization (a Remus-style checkpoint) is forced before release.
//!
//! The paper's two criticisms, both reproduced by this model:
//!
//! 1. *"As with all active replication schemes, the resource overheads (CPU
//!    cycles and memory) of COLO and PLOVER is more than 100%"* — the backup
//!    burns a full copy of the primary's execution CPU
//!    ([`nilicon::metrics::RunMetrics::backup_utilization`] ≈ active).
//! 2. *"For largely non-deterministic workloads, mismatches are frequent,
//!    resulting in prohibitive overhead"* — [`ColoEngine::new`] takes a
//!    `divergence` rate (expected fraction of comparison intervals whose
//!    outputs differ); each divergent interval pays a full synchronization.
//!    The `colo_divergence` bench binary sweeps it.
//!
//! Output divergence is *modeled* (deterministically, from a hash of the
//! epoch) rather than emergent: our simulated applications are deterministic,
//! whereas real-world divergence comes from scheduling, timestamps, and TCP
//! segmentation differences between replicas.
//!
//! ## Observability
//!
//! Like the MC baseline, `ColoEngine` keeps the default no-op
//! `Checkpointer::set_tracer`: traced COLO runs carry harness-level spans
//! only, and phase reconciliation is vacuous (see `OBSERVABILITY.md`).

#![warn(missing_docs)]

use nilicon::backup::BackupAgent;
use nilicon::engine::{CheckpointOutcome, Checkpointer, FailoverReport};
use nilicon_container::Container;
use nilicon_criu::{dump_container, DumpConfig, RestoreConfig, RestoredContainer};
use nilicon_sim::kernel::Kernel;
use nilicon_sim::mem::TrackingMode;
use nilicon_sim::time::Nanos;
use nilicon_sim::{SimError, SimResult};

/// The COLO engine.
pub struct ColoEngine {
    /// Backup-side state store (used only for forced synchronizations and
    /// failover bookkeeping — the backup replica is live).
    pub agent: BackupAgent,
    /// Expected fraction of comparison intervals with divergent output
    /// (0.0 = fully deterministic workload, 1.0 = every interval diverges).
    divergence: f64,
    /// Per-epoch CPU the backup burns mirroring the primary's execution.
    /// Modeled as one full epoch of a saturated core — the defining cost of
    /// active replication.
    last_exec_cpu: Nanos,
    prepared: bool,
    syncs: u64,
    matches: u64,
}

impl std::fmt::Debug for ColoEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColoEngine")
            .field("divergence", &self.divergence)
            .field("syncs", &self.syncs)
            .field("matches", &self.matches)
            .finish()
    }
}

impl ColoEngine {
    /// New engine with the given expected output-divergence rate.
    pub fn new(costs: nilicon_sim::CostModel, divergence: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&divergence),
            "divergence is a probability"
        );
        ColoEngine {
            agent: BackupAgent::new(costs, true),
            divergence,
            last_exec_cpu: 30_000_000,
            prepared: false,
            syncs: 0,
            matches: 0,
        }
    }

    /// `(forced synchronizations, matched intervals)` so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.syncs, self.matches)
    }

    /// Deterministic divergence decision for `epoch`.
    fn diverges(&self, epoch: u64) -> bool {
        if self.divergence <= 0.0 {
            return false;
        }
        let h = epoch
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(0xD1B54A32D192ED03);
        let u = ((h >> 11) as f64) / ((1u64 << 53) as f64);
        u < self.divergence
    }
}

impl Checkpointer for ColoEngine {
    fn name(&self) -> &'static str {
        "COLO"
    }

    fn prepare(&mut self, primary: &mut Kernel, container: &Container) -> SimResult<()> {
        // Dirty tracking is still needed for the forced synchronizations.
        for pid in container.all_pids() {
            primary.mm_mut(pid)?.set_tracking(TrackingMode::SoftDirty);
        }
        // COLO holds output only for the comparison window, not an epoch —
        // but output still flows through the plug so the engine controls
        // release timing uniformly.
        primary.stack_mut(container.ns.net)?.plugged = true;
        self.prepared = true;
        Ok(())
    }

    fn checkpoint(
        &mut self,
        primary: &mut Kernel,
        backup: &mut Kernel,
        container: &Container,
        epoch: u64,
    ) -> SimResult<CheckpointOutcome> {
        if !self.prepared {
            return Err(SimError::Invalid("engine not prepared".into()));
        }
        let c = primary.costs.clone();
        primary.meter.take();

        // The backup actively re-executes the interval's inputs: a full copy
        // of the primary's execution CPU (the >100% resource cost).
        let mirror_cpu = self.last_exec_cpu;

        if self.diverges(epoch) {
            // Mismatch: full Remus-style synchronization before release.
            self.syncs += 1;
            primary.freeze_cgroup(
                container.cgroup,
                nilicon_sim::proc::FreezeStrategy::BusyPoll,
            )?;
            primary.meter.charge(c.plug_block_cycle);
            primary.stack_mut(container.ns.net)?.block_input();
            let img = dump_container(primary, container, &DumpConfig::nilicon(), None, epoch)?;
            let dirty_pages = img.stats.dirty_pages;
            let state_bytes = img.state_bytes();
            let chunks = img.transfer_chunks();
            primary.stack_mut(container.ns.net)?.unblock_input();
            primary.thaw_cgroup(container.cgroup)?;
            // Synchronization is synchronous: outputs held until the backup
            // has applied the state.
            let transfer =
                c.repl_link_latency + c.repl_wire(state_bytes) + chunks * c.repl_msg_overhead;
            let mut backup_cpu = self.agent.ingest(img);
            self.agent.drbd.receive(nilicon_drbd_barrier(epoch));
            backup_cpu += self.agent.commit(epoch, &mut backup.vfs.disk)?;
            let stop_time = primary.meter.take() + transfer + backup_cpu;
            Ok(CheckpointOutcome {
                stop_time,
                state_bytes,
                dirty_pages,
                ack_delay: 0,
                backup_cpu: backup_cpu + mirror_cpu,
            })
        } else {
            // Match: release after the comparison delay only. Clear the
            // dirty-tracking generation so divergent intervals dump only
            // their own delta.
            self.matches += 1;
            for pid in container.all_pids() {
                primary.clear_refs(pid)?;
            }
            let compare = c.packet_process * 4; // compare + checksum both copies
            primary.meter.charge(compare);
            let stop_time = primary.meter.take();
            // Keep the failover story sound: a matched interval means the
            // live backup replica has equivalent state; record the epoch as
            // committed without shipping anything.
            self.agent.drbd.receive(nilicon_drbd_barrier(epoch));
            Ok(CheckpointOutcome {
                stop_time,
                state_bytes: 0,
                dirty_pages: 0,
                ack_delay: c.repl_link_latency * 2,
                backup_cpu: mirror_cpu,
            })
        }
    }

    fn commit(&mut self, backup: &mut Kernel, epoch: u64) -> SimResult<Nanos> {
        let _ = (backup, epoch);
        Ok(0)
    }

    fn failover(&mut self, backup: &mut Kernel) -> SimResult<(RestoredContainer, FailoverReport)> {
        // The backup replica is live: failover is nearly instantaneous.
        // Mechanically we rebuild from the last synchronized image when one
        // exists; a fully-matched history means the replica state equals the
        // primary's, which our single-app-object harness already embodies.
        self.agent.discard_uncommitted();
        let img = self.agent.materialize()?;
        backup.meter.take();
        let mut restored =
            nilicon_criu::restore_container(backup, &img, &RestoreConfig::default())?;
        backup.meter.take();
        restored.restore_time = backup.costs.vm_resume_at_failover / 4;
        let c = &backup.costs;
        let report = FailoverReport {
            restore: restored.restore_time,
            arp: c.gratuitous_arp,
            tcp: 0, // the live replica's sockets are current
            others: c.recovery_misc,
            disk_pages_committed: 0,
        };
        Ok((restored, report))
    }

    fn committed_epoch(&self) -> Option<u64> {
        self.agent.committed_epoch()
    }
}

/// The backup agent's ack condition requires a disk barrier per epoch; COLO
/// runs the replicas' disks independently, so the barrier is synthetic.
fn nilicon_drbd_barrier(epoch: u64) -> nilicon_drbd::DrbdMsg {
    nilicon_drbd::DrbdMsg::Barrier(epoch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilicon_container::{ContainerRuntime, ContainerSpec, MemLayout};
    use nilicon_sim::time::MILLISECOND;
    use nilicon_sim::CostModel;

    fn setup(divergence: f64) -> (Kernel, Kernel, Container, ColoEngine) {
        let mut p = Kernel::default();
        let b = Kernel::default();
        let spec = ContainerSpec::server("colo", 10, 80);
        let c = ContainerRuntime::create(&mut p, &spec).unwrap();
        let mut e = ColoEngine::new(CostModel::default(), divergence);
        e.prepare(&mut p, &c).unwrap();
        (p, b, c, e)
    }

    #[test]
    fn deterministic_workload_pays_almost_nothing() {
        let (mut p, mut b, c, mut e) = setup(0.0);
        let mut total_stop = 0;
        for epoch in 1..=50 {
            p.mem_write(c.init_pid(), MemLayout::heap(0), &[epoch as u8])
                .unwrap();
            let o = e.checkpoint(&mut p, &mut b, &c, epoch as u64).unwrap();
            total_stop += o.stop_time;
            assert_eq!(o.state_bytes, 0, "matched interval ships nothing");
        }
        assert!(
            total_stop < MILLISECOND,
            "50 matched comparisons cost <1ms total, got {total_stop}ns"
        );
        assert_eq!(e.counters(), (0, 50));
    }

    #[test]
    fn divergent_workload_pays_full_synchronizations() {
        let (mut p, mut b, c, mut e) = setup(1.0);
        let mut total_stop = 0;
        for epoch in 1..=10 {
            p.mem_write(c.init_pid(), MemLayout::heap(0), &[epoch as u8])
                .unwrap();
            let o = e.checkpoint(&mut p, &mut b, &c, epoch as u64).unwrap();
            total_stop += o.stop_time;
        }
        let (syncs, matches) = e.counters();
        assert_eq!(syncs, 10);
        assert_eq!(matches, 0);
        assert!(
            total_stop > 10 * MILLISECOND,
            "§VIII: frequent mismatches are prohibitive, got {total_stop}ns"
        );
    }

    #[test]
    fn divergence_rate_is_respected_statistically() {
        let e = ColoEngine::new(CostModel::default(), 0.3);
        let hits = (0..10_000).filter(|&i| e.diverges(i)).count();
        assert!((2_500..3_500).contains(&hits), "≈30%: {hits}");
    }

    #[test]
    fn backup_cpu_exceeds_passive_schemes() {
        // The >100% resource claim: backup CPU ≈ primary exec CPU even with
        // zero divergence.
        let (mut p, mut b, c, mut e) = setup(0.0);
        let o = e.checkpoint(&mut p, &mut b, &c, 1).unwrap();
        assert!(o.backup_cpu >= 30 * MILLISECOND, "full mirror execution");
    }

    #[test]
    fn failover_after_sync_restores_state() {
        let (mut p, mut b, c, mut e) = setup(1.0);
        p.mem_write(c.init_pid(), MemLayout::heap(0), b"colo-state")
            .unwrap();
        e.checkpoint(&mut p, &mut b, &c, 1).unwrap();
        let (restored, report) = e.failover(&mut b).unwrap();
        restored.finish(&mut b).unwrap();
        let mut buf = [0u8; 10];
        b.mem_read(restored.container.init_pid(), MemLayout::heap(0), &mut buf)
            .unwrap();
        assert_eq!(&buf, b"colo-state");
        assert_eq!(report.tcp, 0, "live replica: no retransmission wait");
        assert!(report.total() < 100 * MILLISECOND, "near-instant failover");
    }

    #[test]
    fn invalid_divergence_rejected() {
        let r = std::panic::catch_unwind(|| ColoEngine::new(CostModel::default(), 1.5));
        assert!(r.is_err());
    }
}
