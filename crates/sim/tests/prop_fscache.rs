//! Property tests: DNC ("Dirty but Not Checkpointed") tracking against a
//! reference model (DESIGN.md invariant 6) — `fgetfc` returns exactly the
//! cache entries modified since the previous `fgetfc`, with correct contents.

use nilicon_sim::block::BlockDevice;
use nilicon_sim::fs::PageCache;
use nilicon_sim::ids::{DevId, Ino};
use nilicon_sim::PAGE_SIZE;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Clone)]
enum Op {
    Write {
        ino: u64,
        page: u64,
        off: usize,
        byte: u8,
    },
    Read {
        ino: u64,
        page: u64,
    },
    Flush,
    Fgetfc,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (1..4u64, 0..8u64, 0..4000usize, any::<u8>())
            .prop_map(|(ino, page, off, byte)| Op::Write { ino, page, off, byte }),
        2 => (1..4u64, 0..8u64).prop_map(|(ino, page)| Op::Read { ino, page }),
        1 => Just(Op::Flush),
        2 => Just(Op::Fgetfc),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fgetfc_matches_model(ops in proptest::collection::vec(op_strategy(), 1..100)) {
        let mut pc = PageCache::new();
        let mut disk = BlockDevice::new(DevId(1));
        // Model: set of (ino,page) modified since last fgetfc, plus full
        // expected contents.
        let mut dnc: BTreeSet<(u64, u64)> = BTreeSet::new();
        let mut contents: BTreeMap<(u64, u64), Vec<u8>> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Write { ino, page, off, byte } => {
                    pc.write(Ino(ino), page, off, &[byte]);
                    dnc.insert((ino, page));
                    contents
                        .entry((ino, page))
                        .or_insert_with(|| vec![0; PAGE_SIZE])[off] = byte;
                }
                Op::Read { ino, page } => {
                    let mut buf = [0u8; 8];
                    pc.read(&disk, Ino(ino), page, 0, &mut buf);
                    // Reads never create DNC obligations.
                }
                Op::Flush => {
                    pc.flush(&mut disk, None);
                    // Flush clears writeback-dirty but NOT the DNC set.
                }
                Op::Fgetfc => {
                    let got = pc.fgetfc();
                    let got_keys: BTreeSet<(u64, u64)> =
                        got.pages.iter().map(|(i, p, _, _)| (i.0, *p)).collect();
                    prop_assert_eq!(&got_keys, &dnc, "fgetfc = exactly the modified set");
                    for (ino, page, data, _) in &got.pages {
                        let want = &contents[&(ino.0, *page)];
                        prop_assert_eq!(&data[..], &want[..], "checkpointed contents correct");
                    }
                    dnc.clear();
                }
            }
        }
        // Final collection must also match.
        let got = pc.fgetfc();
        let got_keys: BTreeSet<(u64, u64)> =
            got.pages.iter().map(|(i, p, _, _)| (i.0, *p)).collect();
        prop_assert_eq!(got_keys, dnc);
    }

    #[test]
    fn flush_then_reread_is_durable(
        writes in proptest::collection::vec((0..8u64, 0..4000usize, any::<u8>()), 1..30)
    ) {
        let mut pc = PageCache::new();
        let mut disk = BlockDevice::new(DevId(1));
        let mut model: BTreeMap<(u64, usize), u8> = BTreeMap::new();
        for &(page, off, byte) in &writes {
            pc.write(Ino(1), page, off, &[byte]);
            model.insert((page, off), byte);
        }
        pc.flush(&mut disk, None);
        // Fresh cache (eviction): reads must come back from the device.
        let mut fresh = PageCache::new();
        for (&(page, off), &byte) in &model {
            let mut buf = [0u8; 1];
            prop_assert!(fresh.read(&disk, Ino(1), page, off, &mut buf));
            prop_assert_eq!(buf[0], byte);
        }
    }
}
