//! Cluster-level integration: routing, partitions, address takeover, and the
//! §VII-A "manually unplug the network cable" scenario at the substrate
//! level.

use nilicon_sim::cluster::Cluster;
use nilicon_sim::ids::{Endpoint, HostId, NsId};
use nilicon_sim::kernel::Kernel;
use nilicon_sim::net::{InputMode, TcpState};

struct TestNet {
    cl: Cluster,
    server_host: HostId,
    server_ns: NsId,
    client_host: HostId,
    client_ns: NsId,
}

fn setup() -> TestNet {
    let mut cl = Cluster::new();
    let server_host = cl.add_host(Kernel::default());
    let client_host = cl.add_host(Kernel::default());
    let server_ns = cl.host_mut(server_host).namespaces.create_set("s").net;
    let client_ns = cl.host_mut(client_host).namespaces.create_set("c").net;
    cl.host_mut(server_host)
        .create_stack(server_ns, 10, InputMode::Buffer);
    cl.host_mut(client_host)
        .create_stack(client_ns, 20, InputMode::Buffer);
    cl.bind_addr(10, server_host, server_ns);
    cl.bind_addr(20, client_host, client_ns);
    TestNet {
        cl,
        server_host,
        server_ns,
        client_host,
        client_ns,
    }
}

#[test]
fn many_connections_route_independently() {
    let mut t = setup();
    let srv = t.cl.host_mut(t.server_host).stack_mut(t.server_ns).unwrap();
    let l = srv.socket();
    srv.bind(l, 80).unwrap();
    srv.listen(l).unwrap();

    let mut clients = Vec::new();
    for _ in 0..32 {
        let cli = t.cl.host_mut(t.client_host).stack_mut(t.client_ns).unwrap();
        let c = cli.socket();
        cli.connect(c, Endpoint::new(10, 80)).unwrap();
        clients.push(c);
    }
    t.cl.pump();

    // All accepted, all established.
    let srv = t.cl.host_mut(t.server_host).stack_mut(t.server_ns).unwrap();
    let mut children = Vec::new();
    while let Some(child) = srv.accept(l).unwrap() {
        children.push(child);
    }
    assert_eq!(children.len(), 32);

    // Each client sends its index; each child receives exactly its own.
    for (i, &c) in clients.iter().enumerate() {
        let cli = t.cl.host_mut(t.client_host).stack_mut(t.client_ns).unwrap();
        cli.send(c, &[i as u8]).unwrap();
    }
    t.cl.pump();
    let srv = t.cl.host_mut(t.server_host).stack_mut(t.server_ns).unwrap();
    let mut seen = [false; 32];
    for &child in &children {
        let data = srv.recv(child, 16).unwrap();
        assert_eq!(data.len(), 1);
        assert!(!seen[data[0] as usize], "no cross-talk");
        seen[data[0] as usize] = true;
    }
    assert!(seen.iter().all(|&s| s));
}

#[test]
fn cable_unplug_and_replug() {
    // §VII-A: "we also manually unplug the network cable a few times".
    let mut t = setup();
    let srv = t.cl.host_mut(t.server_host).stack_mut(t.server_ns).unwrap();
    let l = srv.socket();
    srv.bind(l, 80).unwrap();
    srv.listen(l).unwrap();
    let cli = t.cl.host_mut(t.client_host).stack_mut(t.client_ns).unwrap();
    let c = cli.socket();
    cli.connect(c, Endpoint::new(10, 80)).unwrap();
    t.cl.pump();
    let child = t
        .cl
        .host_mut(t.server_host)
        .stack_mut(t.server_ns)
        .unwrap()
        .accept(l)
        .unwrap()
        .unwrap();

    // Unplug; data sent during the outage is lost on the wire but retained
    // in the sender's write queue.
    t.cl.partition(t.server_host);
    t.cl.host_mut(t.client_host)
        .stack_mut(t.client_ns)
        .unwrap()
        .send(c, b"during-outage")
        .unwrap();
    let st = t.cl.pump();
    assert!(st.delivered == 0 && st.dropped >= 1);

    // Replug; the client's retransmission recovers everything.
    t.cl.heal(t.server_host);
    let cli = t.cl.host_mut(t.client_host).stack_mut(t.client_ns).unwrap();
    let pkt = cli.sock(c).unwrap().retransmit().expect("unacked bytes");
    cli.inject_egress(pkt);
    t.cl.pump();
    let srv = t.cl.host_mut(t.server_host).stack_mut(t.server_ns).unwrap();
    assert_eq!(srv.recv(child, 64).unwrap(), b"during-outage");
    let cli = t.cl.host_mut(t.client_host).stack_mut(t.client_ns).unwrap();
    assert_eq!(cli.sock(c).unwrap().state, TcpState::Established);
    assert_eq!(cli.broken_connections(), 0);
}

#[test]
fn address_takeover_mid_connection_via_socket_restore() {
    // The full failover network path at substrate level: establish, dump
    // sockets, move the address, restore sockets on another host, continue.
    let mut t = setup();
    let backup_host = t.cl.add_host(Kernel::default());
    let backup_ns = t.cl.host_mut(backup_host).namespaces.create_set("b").net;
    t.cl.host_mut(backup_host)
        .create_stack(backup_ns, 10, InputMode::Buffer);
    // NOTE: addr 10 still routes to the original server until the "ARP".

    let srv = t.cl.host_mut(t.server_host).stack_mut(t.server_ns).unwrap();
    let l = srv.socket();
    srv.bind(l, 80).unwrap();
    srv.listen(l).unwrap();
    let cli = t.cl.host_mut(t.client_host).stack_mut(t.client_ns).unwrap();
    let c = cli.socket();
    cli.connect(c, Endpoint::new(10, 80)).unwrap();
    t.cl.pump();
    let child = t
        .cl
        .host_mut(t.server_host)
        .stack_mut(t.server_ns)
        .unwrap()
        .accept(l)
        .unwrap()
        .unwrap();

    // In-flight request the original server never answers.
    t.cl.host_mut(t.client_host)
        .stack_mut(t.client_ns)
        .unwrap()
        .send(c, b"pending")
        .unwrap();
    t.cl.pump();
    let _ = child;

    // Checkpoint the server's sockets, kill the host, restore at the backup.
    let (ports, states) = t
        .cl
        .host_mut(t.server_host)
        .stack_mut(t.server_ns)
        .unwrap()
        .checkpoint_sockets();
    t.cl.partition(t.server_host);
    let bstack = t.cl.host_mut(backup_host).stack_mut(backup_ns).unwrap();
    bstack.block_input();
    let restored = bstack
        .restore_sockets(&ports, &states, 200_000_000)
        .unwrap();
    t.cl.bind_addr(10, backup_host, backup_ns); // gratuitous ARP
    t.cl.host_mut(backup_host)
        .stack_mut(backup_ns)
        .unwrap()
        .unblock_input();

    // The restored socket has the pending request in its read queue.
    let bstack = t.cl.host_mut(backup_host).stack_mut(backup_ns).unwrap();
    assert_eq!(bstack.recv(restored[0], 64).unwrap(), b"pending");
    // And can answer it.
    bstack.send(restored[0], b"answered").unwrap();
    t.cl.pump();
    let cli = t.cl.host_mut(t.client_host).stack_mut(t.client_ns).unwrap();
    assert_eq!(cli.recv(c, 64).unwrap(), b"answered");
    assert_eq!(cli.broken_connections(), 0);
}

#[test]
fn three_host_isolation() {
    // Traffic between two hosts is unaffected by a third host's partition.
    let mut t = setup();
    let third = t.cl.add_host(Kernel::default());
    let third_ns = t.cl.host_mut(third).namespaces.create_set("t").net;
    t.cl.host_mut(third).create_stack(third_ns, 30, InputMode::Buffer);
    t.cl.bind_addr(30, third, third_ns);
    t.cl.partition(third);

    let srv = t.cl.host_mut(t.server_host).stack_mut(t.server_ns).unwrap();
    let l = srv.socket();
    srv.bind(l, 80).unwrap();
    srv.listen(l).unwrap();
    let cli = t.cl.host_mut(t.client_host).stack_mut(t.client_ns).unwrap();
    let c = cli.socket();
    cli.connect(c, Endpoint::new(10, 80)).unwrap();
    let st = t.cl.pump();
    assert!(st.delivered >= 2, "unrelated partition does not block traffic");
    assert!(t
        .cl
        .host_mut(t.server_host)
        .stack_mut(t.server_ns)
        .unwrap()
        .accept(l)
        .unwrap()
        .is_some());
}
