//! Property tests of the chaos link's partition/heal model: no message is
//! ever delivered while a partition covering its send time is still open,
//! and healing flushes held messages in FIFO send order — the `sch_plug`
//! semantics the split-brain fencing argument (DESIGN.md §9) rests on.

use nilicon_sim::net::{ChaosLink, ChaosSchedule, FaultKind, LinkDir};
use nilicon_sim::time::Nanos;
use proptest::prelude::*;

const MS: Nanos = 1_000_000;

/// Random partition windows (possibly overlapping / back-to-back) plus
/// random send times, all within a 100 ms horizon.
fn scenario() -> impl Strategy<Value = (Vec<(Nanos, Nanos)>, Vec<Nanos>, Nanos)> {
    let windows = proptest::collection::vec(
        (0u64..90, 1u64..40).prop_map(|(from, len)| (from * MS, (from + len) * MS)),
        0..4,
    );
    let sends = proptest::collection::vec((0u64..100_000).prop_map(|t| t * (MS / 1000)), 1..40);
    let latency = 1u64..200_000;
    (windows, sends, latency)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn nothing_crosses_an_open_partition_and_heal_flushes_in_order(
        (windows, mut sends, latency) in scenario()
    ) {
        let mut sched = ChaosSchedule::default();
        for &(from, until) in &windows {
            sched = sched.window(from, until, FaultKind::Partition);
        }
        sends.sort_unstable();
        let mut link: ChaosLink<usize> = ChaosLink::new(LinkDir::AtoB, latency, sched.clone());
        for (i, &t) in sends.iter().enumerate() {
            link.send(t, i);
        }
        // Drain far past every window.
        let horizon = sched.horizon() + 200 * MS;
        let delivered = link.poll(horizon);

        // Every message arrives exactly once (partitions hold, never drop)…
        let ids: Vec<usize> = delivered.iter().map(|&(_, m)| m).collect();
        prop_assert_eq!(ids.len(), sends.len());

        for &(at, m) in &delivered {
            let sent = sends[m];
            // …never before its send time plus base latency…
            prop_assert!(at >= sent + latency);
            // …and never while any partition covering its send time is
            // still open: delivery happens at/after the healed instant.
            prop_assert!(
                at >= sched.partition_release(sent) + latency,
                "msg sent at {} delivered at {} inside a partition", sent, at
            );
            prop_assert!(!sched.partitioned(at - latency), "departed mid-partition");
        }

        // FIFO: send order == delivery order (delivery times tie-broken by
        // send order in poll, and the clamp forbids overtaking).
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&ids, &sorted, "heal must flush in send order");

        // Delivery times are monotonic in send order.
        for pair in delivered.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0);
        }
    }

    #[test]
    fn incremental_polling_matches_one_shot_drain(
        (windows, mut sends, latency) in scenario()
    ) {
        let mut sched = ChaosSchedule::default();
        for &(from, until) in &windows {
            sched = sched.window(from, until, FaultKind::Partition);
        }
        sends.sort_unstable();
        let mut eager: ChaosLink<usize> = ChaosLink::new(LinkDir::AtoB, latency, sched.clone());
        let mut lazy: ChaosLink<usize> = ChaosLink::new(LinkDir::AtoB, latency, sched.clone());
        let horizon = sched.horizon() + 200 * MS;

        // Eager: poll after every send (a harness polling each epoch).
        let mut eager_out = Vec::new();
        for (i, &t) in sends.iter().enumerate() {
            eager.send(t, i);
            eager_out.extend(eager.poll(t));
        }
        eager_out.extend(eager.poll(horizon));

        // Lazy: single drain at the end.
        for (i, &t) in sends.iter().enumerate() {
            lazy.send(t, i);
        }
        let lazy_out = lazy.poll(horizon);

        prop_assert_eq!(eager_out, lazy_out, "poll cadence must not change delivery");
    }
}
