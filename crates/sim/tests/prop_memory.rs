//! Property tests: soft-dirty tracking against a reference model.
//!
//! DESIGN.md invariant 7: after `clear_refs`, `pagemap` returns *exactly*
//! the set of pages written since — no false dirties, no missed writes —
//! under arbitrary interleavings of writes, reads, clears, and scans.

use nilicon_sim::mem::{AddressSpace, PageBuf, Perms, TrackingMode, Vma, VmaKind};
use nilicon_sim::PAGE_SIZE;
use proptest::prelude::*;
use std::collections::BTreeSet;

const PAGES: u64 = 64;
const BASE: u64 = 0x10000;

#[derive(Debug, Clone)]
enum Op {
    Write { page: u64, off: u64, len: usize },
    Read { page: u64 },
    ClearRefs,
    Scan,
}

/// One step of the post-checkpoint race between the container (writes) and
/// the background COW copier (chunked drains).
#[derive(Debug, Clone)]
enum RaceOp {
    Write { page: u64 },
    Drain { max: usize },
}

fn race_strategy() -> impl Strategy<Value = RaceOp> {
    prop_oneof![
        (0..PAGES).prop_map(|page| RaceOp::Write { page }),
        (1..8usize).prop_map(|max| RaceOp::Drain { max }),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..PAGES, 0..4000u64, 1..64usize).prop_map(|(page, off, len)| Op::Write {
            page,
            off,
            len
        }),
        (0..PAGES).prop_map(|page| Op::Read { page }),
        Just(Op::ClearRefs),
        Just(Op::Scan),
    ]
}

fn space() -> AddressSpace {
    let mut a = AddressSpace::new();
    a.mmap(Vma {
        start: BASE,
        len: PAGES * PAGE_SIZE as u64,
        perms: Perms::RW,
        kind: VmaKind::Anon,
        is_heap: true,
        is_stack: false,
    })
    .unwrap();
    a.set_tracking(TrackingMode::SoftDirty);
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pagemap_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut a = space();
        let mut model: BTreeSet<u64> = BTreeSet::new();

        for op in ops {
            match op {
                Op::Write { page, off, len } => {
                    let addr = BASE + page * PAGE_SIZE as u64 + off.min(PAGE_SIZE as u64 - len as u64);
                    let data = vec![0xAB; len];
                    a.write(addr, &data).unwrap();
                    // The write may straddle into the next page.
                    let first = addr / PAGE_SIZE as u64;
                    let last = (addr + len as u64 - 1) / PAGE_SIZE as u64;
                    for vpn in first..=last {
                        model.insert(vpn);
                    }
                }
                Op::Read { page } => {
                    let mut buf = [0u8; 32];
                    a.read(BASE + page * PAGE_SIZE as u64, &mut buf).unwrap();
                    // Reads never dirty.
                }
                Op::ClearRefs => {
                    a.clear_refs();
                    model.clear();
                }
                Op::Scan => {
                    let dirty: BTreeSet<u64> = a.soft_dirty_vpns().into_iter().collect();
                    prop_assert_eq!(&dirty, &model, "scan must match the model exactly");
                }
            }
        }
        let dirty: BTreeSet<u64> = a.soft_dirty_vpns().into_iter().collect();
        prop_assert_eq!(dirty, model);
    }

    /// Invariant 7 under COW checkpointing: write-protecting the dirty set
    /// and draining it in the background must not perturb soft-dirty
    /// tracking — after `clear_refs`, the pagemap returns *exactly* the
    /// pages written since, even when those writes race the copier. And
    /// every protected page is copied out exactly once, with its
    /// checkpoint-time contents (copy-before-write), no matter how the race
    /// interleaves.
    #[test]
    fn cow_copier_race_preserves_tracking_model_and_checkpoint_contents(
        pre in proptest::collection::vec((0..PAGES, any::<u8>()), 1..40),
        race in proptest::collection::vec(race_strategy(), 1..100),
    ) {
        use std::collections::BTreeMap;
        let mut a = space();

        // Epoch body: dirty some pages, remembering each page's
        // checkpoint-time tag (offset 500 stays zero until the race).
        let mut checkpoint_tag: BTreeMap<u64, u8> = BTreeMap::new();
        for &(page, tag) in &pre {
            a.write(BASE + page * PAGE_SIZE as u64 + 11, &[tag]).unwrap();
            checkpoint_tag.insert(BASE / PAGE_SIZE as u64 + page, tag);
        }

        // Pause: collect the dirty set, start a new tracking generation,
        // and write-protect instead of copying.
        let dirty: Vec<u64> = a.soft_dirty_vpns();
        prop_assert_eq!(dirty.len(), checkpoint_tag.len());
        a.clear_refs();
        a.cow_protect(&dirty);

        // Resume: container writes race the background copier.
        let mut still_protected: BTreeSet<u64> = dirty.iter().copied().collect();
        let mut raced: BTreeSet<u64> = BTreeSet::new();
        let mut model_dirty: BTreeSet<u64> = BTreeSet::new();
        let mut faults = 0u64;
        let mut collected: BTreeMap<u64, PageBuf> = BTreeMap::new();
        let collect = |got: Vec<(u64, PageBuf)>,
                           collected: &mut BTreeMap<u64, PageBuf>| {
            for (vpn, snap) in got {
                prop_assert!(collected.insert(vpn, snap).is_none(),
                    "page {vpn} copied out twice");
            }
            Ok(())
        };
        for op in race {
            match op {
                RaceOp::Write { page } => {
                    let vpn = BASE / PAGE_SIZE as u64 + page;
                    let out = a.write(BASE + page * PAGE_SIZE as u64 + 500, &[0x5A]).unwrap();
                    faults += u64::from(out.cow_faults);
                    model_dirty.insert(vpn);
                    if still_protected.remove(&vpn) {
                        raced.insert(vpn);
                    }
                }
                RaceOp::Drain { max } => {
                    collect(a.take_cow_staged(), &mut collected)?;
                    let got = a.cow_drain(max);
                    for (vpn, _) in &got {
                        prop_assert!(still_protected.remove(vpn),
                            "drained a page that was not protected");
                    }
                    collect(got, &mut collected)?;
                }
            }
        }
        // Final drain: the copier always finishes before the next epoch.
        collect(a.take_cow_staged(), &mut collected)?;
        collect(a.cow_drain(usize::MAX), &mut collected)?;
        prop_assert_eq!(a.cow_protected_count(), 0);

        // Tracking model holds: exactly the racing writes are dirty.
        let scanned: BTreeSet<u64> = a.soft_dirty_vpns().into_iter().collect();
        prop_assert_eq!(&scanned, &model_dirty, "COW race perturbed soft-dirty tracking");

        // Every protected page was copied out exactly once, and each copy
        // holds checkpoint-time contents: the pre-race tag at offset 11 and
        // a zero at offset 500 (racing writes never leak into the image).
        prop_assert_eq!(faults as usize, raced.len(), "one fault per first racing write");
        let copied: BTreeSet<u64> = collected.keys().copied().collect();
        let expected: BTreeSet<u64> = checkpoint_tag.keys().copied().collect();
        prop_assert_eq!(&copied, &expected);
        for (vpn, snap) in &collected {
            prop_assert_eq!(snap[11], checkpoint_tag[vpn], "stale tag in copied page");
            prop_assert_eq!(snap[500], 0, "racing write leaked into the checkpoint copy");
        }
    }

    #[test]
    fn tracking_faults_fire_once_per_page_per_generation(
        pages in proptest::collection::vec(0..PAGES, 1..80)
    ) {
        let mut a = space();
        a.clear_refs();
        let mut seen = BTreeSet::new();
        let mut faults = 0u32;
        for page in pages {
            let out = a.write(BASE + page * PAGE_SIZE as u64, b"x").unwrap();
            faults += out.tracking_faults;
            seen.insert(page);
        }
        prop_assert_eq!(faults as usize, seen.len(), "exactly one fault per distinct page");
    }

    #[test]
    fn read_write_roundtrip_any_alignment(
        off in 0..(PAGES - 2) * PAGE_SIZE as u64,
        data in proptest::collection::vec(any::<u8>(), 1..5000)
    ) {
        let mut a = space();
        a.write(BASE + off, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        a.read(BASE + off, &mut back).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn snapshot_install_preserves_contents(
        writes in proptest::collection::vec((0..PAGES, any::<u8>()), 1..40)
    ) {
        let mut a = space();
        for &(page, tag) in &writes {
            a.write(BASE + page * PAGE_SIZE as u64 + 7, &[tag]).unwrap();
        }
        let mut b = space();
        for vpn in a.resident_vpns() {
            let snap = a.snapshot_page(vpn).unwrap();
            b.install_page(vpn, &snap).unwrap();
        }
        for &(page, _) in &writes {
            let vpn = BASE / PAGE_SIZE as u64 + page;
            prop_assert_eq!(a.snapshot_page(vpn).unwrap(), b.snapshot_page(vpn).unwrap());
        }
        prop_assert_eq!(b.soft_dirty_count(), 0, "restored pages start clean");
    }
}
