//! Property tests of the TCP model: exactly-once, in-order byte-stream
//! delivery under arbitrary send/deliver/drop/retransmit schedules — the
//! foundation the §VII-A "no broken connections" guarantee rests on.

use nilicon_sim::ids::Endpoint;
use nilicon_sim::net::{InputMode, NetStack};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Ev {
    /// Client sends a chunk of its (infinite) deterministic stream.
    Send(usize),
    /// Deliver all in-flight packets (both directions).
    Deliver,
    /// Drop everything currently in flight.
    DropInFlight,
    /// Client retransmission timer fires.
    Retransmit,
    /// Server reads everything available.
    ServerRead,
}

fn schedule() -> impl Strategy<Value = Vec<Ev>> {
    proptest::collection::vec(
        prop_oneof![
            4 => (1..400usize).prop_map(Ev::Send),
            4 => Just(Ev::Deliver),
            2 => Just(Ev::DropInFlight),
            2 => Just(Ev::Retransmit),
            3 => Just(Ev::ServerRead),
        ],
        1..80,
    )
}

fn stream_byte(i: usize) -> u8 {
    ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 33) as u8
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn byte_stream_is_exactly_once_in_order(events in schedule()) {
        let mut server = NetStack::new(1, 1_000_000_000, InputMode::Buffer);
        let mut client = NetStack::new(2, 1_000_000_000, InputMode::Buffer);
        let l = server.socket();
        server.bind(l, 80).unwrap();
        server.listen(l).unwrap();
        let c = client.socket();
        client.connect(c, Endpoint::new(1, 80)).unwrap();
        // Handshake.
        for _ in 0..3 {
            for p in client.take_ready() { server.ingress(p); }
            for p in server.take_ready() { client.ingress(p); }
        }
        let child = server.accept(l).unwrap().expect("established");

        let mut sent = 0usize;      // bytes pushed into the client socket
        let mut received = Vec::new(); // bytes the server app consumed
        let mut in_flight: Vec<nilicon_sim::net::Packet> = Vec::new();

        for ev in events {
            match ev {
                Ev::Send(n) => {
                    let chunk: Vec<u8> = (sent..sent + n).map(stream_byte).collect();
                    client.send(c, &chunk).unwrap();
                    sent += n;
                    in_flight.extend(client.take_ready());
                }
                Ev::Deliver => {
                    for p in in_flight.drain(..) {
                        if p.dst.addr == 1 { server.ingress(p); } else { client.ingress(p); }
                    }
                    // Route replies (ACKs) back.
                    for p in server.take_ready() { client.ingress(p); }
                    for p in client.take_ready() { server.ingress(p); }
                }
                Ev::DropInFlight => {
                    in_flight.clear();
                    client.take_ready();
                    server.take_ready();
                }
                Ev::Retransmit => {
                    if let Some(pkt) = client.sock(c).unwrap().retransmit() {
                        in_flight.push(pkt);
                    }
                }
                Ev::ServerRead => {
                    received.extend(server.recv(child, usize::MAX).unwrap());
                }
            }
        }
        received.extend(server.recv(child, usize::MAX).unwrap());

        // Invariant: the server saw a strict prefix of the stream — never a
        // duplicate, never a gap, never reordering.
        prop_assert!(received.len() <= sent);
        for (i, &b) in received.iter().enumerate() {
            prop_assert_eq!(b, stream_byte(i), "byte {} corrupted/reordered", i);
        }

        // Liveness: after enough retransmit+deliver rounds, everything sent
        // must arrive.
        for _ in 0..4 {
            // Drain the whole unacked window (MSS-segmented since the
            // multi-segment RTO fix), not just the first segment.
            let mut off = 0;
            while let Some(pkt) = client.sock(c).unwrap().retransmit_at(off) {
                off += pkt.payload.len();
                server.ingress(pkt);
            }
            for p in server.take_ready() { client.ingress(p); }
            received.extend(server.recv(child, usize::MAX).unwrap());
        }
        prop_assert_eq!(received.len(), sent, "retransmission recovers every byte");
    }

    #[test]
    fn repair_roundtrip_any_queue_state(
        unread in proptest::collection::vec(any::<u8>(), 0..2000),
        unacked in proptest::collection::vec(any::<u8>(), 0..2000),
        seqs in (any::<u32>(), any::<u32>()),
    ) {
        use nilicon_sim::net::{RepairState, TcpSocket, TcpState};
        use nilicon_sim::ids::SockId;
        let st = RepairState {
            local: Endpoint::new(1, 80),
            remote: Endpoint::new(2, 5000),
            snd_nxt: seqs.0,
            snd_una: seqs.0.wrapping_sub(unacked.len() as u32),
            rcv_nxt: seqs.1,
            write_queue: unacked.clone(),
            read_queue: unread.clone(),
        };
        let mut sock = TcpSocket::new(SockId(9), 1_000_000_000);
        sock.set_repair(true);
        sock.repair_set(&st, 200_000_000).unwrap();
        let round = sock.repair_get().unwrap();
        prop_assert_eq!(&round, &st, "repair get(set(x)) == x");
        sock.set_repair(false);
        prop_assert_eq!(sock.state, TcpState::Established);
        prop_assert_eq!(sock.recv(usize::MAX).unwrap(), unread);
        if !unacked.is_empty() {
            use nilicon_sim::net::RTO_MSS;
            let rt = sock.retransmit().expect("unacked bytes retransmit");
            prop_assert_eq!(rt.seq, st.snd_una);
            // The drain loop covers the whole window in MSS-sized segments.
            let mut covered = Vec::new();
            let mut off = 0;
            while let Some(p) = sock.retransmit_at(off) {
                prop_assert!(p.payload.len() <= RTO_MSS, "segment within MSS");
                prop_assert_eq!(p.seq, st.snd_una.wrapping_add(off as u32));
                off += p.payload.len();
                covered.extend_from_slice(&p.payload);
            }
            prop_assert_eq!(&covered[..], &unacked[..]);
        }
    }
}
