//! Namespaces: the isolation layer containers are made of.
//!
//! Collecting namespace information through the stock proc interface "may
//! take up to 100ms" (§I) — which is why namespaces sit in NiLiCon's
//! infrequently-modified cached state set (§V-B).

use crate::ids::NsId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Namespace kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NsKind {
    /// Process ids.
    Pid,
    /// Network stack.
    Net,
    /// Mount table.
    Mnt,
    /// Hostname.
    Uts,
    /// SysV IPC.
    Ipc,
    /// User ids.
    User,
}

/// All six kinds, in a fixed order.
pub const ALL_NS_KINDS: [NsKind; 6] = [
    NsKind::Pid,
    NsKind::Net,
    NsKind::Mnt,
    NsKind::Uts,
    NsKind::Ipc,
    NsKind::User,
];

/// One namespace instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Namespace {
    /// Id.
    pub id: NsId,
    /// Kind.
    pub kind: NsKind,
    /// Opaque configuration payload (hostname for UTS, uid maps for User...).
    /// Travels through checkpoints byte-for-byte.
    pub config: Vec<u8>,
}

/// The set of namespaces a container runs in: one per kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NsSet {
    /// pid ns.
    pub pid: NsId,
    /// net ns.
    pub net: NsId,
    /// mnt ns.
    pub mnt: NsId,
    /// uts ns.
    pub uts: NsId,
    /// ipc ns.
    pub ipc: NsId,
    /// user ns.
    pub user: NsId,
}

/// Namespace registry of one kernel.
#[derive(Debug, Default)]
pub struct NsRegistry {
    spaces: HashMap<NsId, Namespace>,
    next: u32,
}

impl NsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a namespace of `kind`.
    pub fn create(&mut self, kind: NsKind, config: Vec<u8>) -> NsId {
        self.next += 1;
        let id = NsId(self.next);
        self.spaces.insert(id, Namespace { id, kind, config });
        id
    }

    /// Create a full set, one namespace per kind.
    pub fn create_set(&mut self, hostname: &str) -> NsSet {
        NsSet {
            pid: self.create(NsKind::Pid, vec![]),
            net: self.create(NsKind::Net, vec![]),
            mnt: self.create(NsKind::Mnt, vec![]),
            uts: self.create(NsKind::Uts, hostname.as_bytes().to_vec()),
            ipc: self.create(NsKind::Ipc, vec![]),
            user: self.create(NsKind::User, b"0 0 4294967295".to_vec()),
        }
    }

    /// Lookup.
    pub fn get(&self, id: NsId) -> Option<&Namespace> {
        self.spaces.get(&id)
    }

    /// Mutate a namespace's config (fires the ftrace hook in kernel paths).
    pub fn set_config(&mut self, id: NsId, config: Vec<u8>) -> bool {
        match self.spaces.get_mut(&id) {
            Some(ns) => {
                ns.config = config;
                true
            }
            None => false,
        }
    }

    /// Snapshot the namespaces of `set` for a checkpoint.
    pub fn snapshot_set(&self, set: &NsSet) -> Vec<Namespace> {
        [set.pid, set.net, set.mnt, set.uts, set.ipc, set.user]
            .iter()
            .filter_map(|id| self.spaces.get(id).cloned())
            .collect()
    }

    /// Install namespaces at restore.
    pub fn install(&mut self, spaces: &[Namespace]) {
        for ns in spaces {
            self.next = self.next.max(ns.id.0);
            self.spaces.insert(ns.id, ns.clone());
        }
    }

    /// Count.
    pub fn len(&self) -> usize {
        self.spaces.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.spaces.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_set_covers_all_kinds() {
        let mut r = NsRegistry::new();
        let set = r.create_set("web-1");
        assert_eq!(r.len(), 6);
        let snap = r.snapshot_set(&set);
        assert_eq!(snap.len(), 6);
        let kinds: Vec<NsKind> = snap.iter().map(|n| n.kind).collect();
        for k in ALL_NS_KINDS {
            assert!(kinds.contains(&k), "missing {k:?}");
        }
        assert_eq!(r.get(set.uts).unwrap().config, b"web-1");
    }

    #[test]
    fn snapshot_install_roundtrip() {
        let mut r = NsRegistry::new();
        let set = r.create_set("host");
        r.set_config(set.uts, b"renamed".to_vec());
        let snap = r.snapshot_set(&set);

        let mut r2 = NsRegistry::new();
        r2.install(&snap);
        assert_eq!(r2.get(set.uts).unwrap().config, b"renamed");
        assert_eq!(r2.len(), 6);
    }

    #[test]
    fn set_config_missing_ns() {
        let mut r = NsRegistry::new();
        assert!(!r.set_config(NsId(42), vec![]));
    }
}
