//! Record/replay of nondeterministic kernel events (HyCoR-style hybrid
//! checkpoint + replay, PAPERS.md).
//!
//! NiLiCon releases output only after the *epoch* ack (~30 ms at the default
//! epoch length). HyCoR — same authors, the direct successor — ships a
//! per-epoch log of every nondeterministic event continuously and releases
//! output as soon as the **log** is committed on the backup; at failover the
//! backup restores the last committed checkpoint and re-executes the
//! container, feeding recorded events back, reproducing byte-identical state
//! and the exact output stream.
//!
//! This module owns the event vocabulary and the primary-side recorder. The
//! sim kernel already owns every nondeterminism source, so the event set is
//! closed over: socket receives (payload + delivery order + stream offset),
//! socket sends (verified by hash during replay), timer reads, and thread
//! scheduling points. The harness layers `Request`/`Step` events on top — it
//! drives the application via `peek_recv`/`consume_recv` rather than
//! `sock_recv`, so request arrival is *its* nondeterminism to record.
//!
//! Recording is off unless explicitly enabled (the `hybrid_replay` extension
//! knob) and suppressed while a replay is in progress, so replayed execution
//! never re-records its own events.

use crate::ids::{Fd, Pid};
use crate::time::Nanos;

/// FNV-1a 64-bit. Stable, dependency-free content hash used to verify that
/// replayed execution reproduces the recorded byte streams.
pub fn content_hash(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One recorded nondeterministic event.
///
/// Payload-carrying events (`Request`, `SockRecv`) store the actual bytes —
/// replay must feed them back verbatim. Output-side events store only a hash:
/// replay *re-produces* the bytes and the hash pins equivalence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayEvent {
    /// A whole application request dispatched by the harness: the payload the
    /// app saw, when it ran, and a digest of the response it produced.
    Request {
        /// Serving pid.
        pid: Pid,
        /// Virtual time the request was dispatched.
        at: Nanos,
        /// Request frame payload (what `Application::handle_request` saw).
        payload: Vec<u8>,
        /// [`content_hash`] of the response bytes.
        response_hash: u64,
        /// Response length in bytes.
        response_len: u32,
    },
    /// One background `Application::step` call (batch workloads).
    Step {
        /// Stepped pid.
        pid: Pid,
        /// Virtual time of the step.
        at: Nanos,
        /// Whether the step reported completion.
        done: bool,
    },
    /// `recv(2)` result: payload identity, global delivery order, and the
    /// socket's cumulative stream offset before this read.
    SockRecv {
        /// Reading pid.
        pid: Pid,
        /// Socket fd.
        fd: Fd,
        /// Bytes returned.
        len: u32,
        /// [`content_hash`] of the returned bytes.
        hash: u64,
        /// Stack-wide delivery sequence number (order across sockets).
        order: u64,
        /// Cumulative bytes delivered on this socket *before* this read.
        off: u64,
    },
    /// `send(2)` observed on the recorded timeline (hash only — replay
    /// regenerates the bytes and must match).
    SockSend {
        /// Sending pid.
        pid: Pid,
        /// Socket fd.
        fd: Fd,
        /// Bytes sent.
        len: u32,
        /// [`content_hash`] of the sent bytes.
        hash: u64,
    },
    /// A guest read of the virtual clock (gettimeofday flavor).
    TimerRead {
        /// Reading pid.
        pid: Pid,
        /// The value the clock returned.
        at: Nanos,
    },
    /// A scheduling point: thread `seq` within `pid` advanced.
    Sched {
        /// Scheduled pid.
        pid: Pid,
        /// Per-thread scheduling sequence number after this point.
        seq: u64,
    },
}

impl ReplayEvent {
    /// Short kind tag (trace/report labels).
    pub fn kind(&self) -> &'static str {
        match self {
            ReplayEvent::Request { .. } => "request",
            ReplayEvent::Step { .. } => "step",
            ReplayEvent::SockRecv { .. } => "sock_recv",
            ReplayEvent::SockSend { .. } => "sock_send",
            ReplayEvent::TimerRead { .. } => "timer_read",
            ReplayEvent::Sched { .. } => "sched",
        }
    }

    /// Modeled wire size of this event in the shipped log: a fixed header
    /// plus any carried payload. Drives log-ship transfer cost.
    pub fn byte_len(&self) -> u64 {
        const HDR: u64 = 24; // tag + pid + timestamps/ids, packed
        match self {
            ReplayEvent::Request { payload, .. } => HDR + 12 + payload.len() as u64,
            ReplayEvent::Step { .. } => HDR + 1,
            ReplayEvent::SockRecv { len, .. } => HDR + 20 + *len as u64,
            ReplayEvent::SockSend { .. } => HDR + 12,
            ReplayEvent::TimerRead { .. } => HDR + 8,
            ReplayEvent::Sched { .. } => HDR + 8,
        }
    }
}

/// The per-epoch nondeterminism log, as shipped to (and stored on) the
/// backup. `sealed` flips when the primary marks the epoch's log complete —
/// only sealed logs are eligible for replay; an unsealed tail is a *partial*
/// log and forces the plain last-checkpoint fallback.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayLog {
    /// Epoch this log belongs to (events recorded since the checkpoint of
    /// `epoch - 1`).
    pub epoch: u64,
    /// Events in recorded order.
    pub events: Vec<ReplayEvent>,
    /// True once the primary sealed the epoch's log (all events shipped).
    pub sealed: bool,
}

impl ReplayLog {
    /// New empty (unsealed) log for `epoch`.
    pub fn new(epoch: u64) -> Self {
        ReplayLog {
            epoch,
            events: Vec::new(),
            sealed: false,
        }
    }

    /// Total modeled wire bytes of all events.
    pub fn byte_len(&self) -> u64 {
        self.events.iter().map(ReplayEvent::byte_len).sum()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Primary-side event recorder, owned by the kernel. Dormant (zero-cost
/// no-ops) unless enabled; suppressed while `replaying` so re-execution on
/// the backup does not re-record.
#[derive(Debug, Default)]
pub struct ReplayRecorder {
    enabled: bool,
    replaying: bool,
    events: Vec<ReplayEvent>,
}

impl ReplayRecorder {
    /// Turn recording on (the `hybrid_replay` knob).
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Is recording configured on?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Should events be captured *right now*? (enabled and not replaying)
    pub fn active(&self) -> bool {
        self.enabled && !self.replaying
    }

    /// Enter/leave replay mode (suppresses recording).
    pub fn set_replaying(&mut self, on: bool) {
        self.replaying = on;
    }

    /// Is a replay in progress?
    pub fn is_replaying(&self) -> bool {
        self.replaying
    }

    /// Append an event if capture is active.
    pub fn record(&mut self, ev: ReplayEvent) {
        if self.active() {
            self.events.push(ev);
        }
    }

    /// Take everything recorded since the last drain (epoch boundary).
    pub fn drain(&mut self) -> Vec<ReplayEvent> {
        std::mem::take(&mut self.events)
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable_and_content_sensitive() {
        assert_eq!(content_hash(b"abc"), content_hash(b"abc"));
        assert_ne!(content_hash(b"abc"), content_hash(b"abd"));
        assert_ne!(content_hash(b""), content_hash(b"\0"));
    }

    #[test]
    fn recorder_dormant_until_enabled() {
        let mut r = ReplayRecorder::default();
        r.record(ReplayEvent::TimerRead {
            pid: Pid(100),
            at: 5,
        });
        assert!(r.is_empty());
        r.enable();
        r.record(ReplayEvent::TimerRead {
            pid: Pid(100),
            at: 5,
        });
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn replaying_suppresses_capture() {
        let mut r = ReplayRecorder::default();
        r.enable();
        r.set_replaying(true);
        assert!(!r.active());
        r.record(ReplayEvent::Sched {
            pid: Pid(100),
            seq: 1,
        });
        assert!(r.is_empty());
        r.set_replaying(false);
        r.record(ReplayEvent::Sched {
            pid: Pid(100),
            seq: 1,
        });
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn drain_resets_buffer() {
        let mut r = ReplayRecorder::default();
        r.enable();
        r.record(ReplayEvent::Step {
            pid: Pid(100),
            at: 1,
            done: false,
        });
        let evs = r.drain();
        assert_eq!(evs.len(), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn byte_len_counts_payloads() {
        let small = ReplayEvent::Sched {
            pid: Pid(100),
            seq: 0,
        };
        let big = ReplayEvent::Request {
            pid: Pid(100),
            at: 0,
            payload: vec![0u8; 1000],
            response_hash: 0,
            response_len: 4,
        };
        assert!(big.byte_len() > small.byte_len() + 1000 - 64);
        let mut log = ReplayLog::new(3);
        log.events.push(small);
        log.events.push(big);
        assert_eq!(
            log.byte_len(),
            log.events.iter().map(ReplayEvent::byte_len).sum::<u64>()
        );
    }
}
