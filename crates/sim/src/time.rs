//! Virtual time: nanosecond clock, cost meter, and a small event queue.
//!
//! Nothing in the simulation ever reads the wall clock. All durations are
//! virtual nanoseconds ([`Nanos`]); experiment determinism follows.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// Virtual nanoseconds.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const MICROSECOND: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MILLISECOND: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SECOND: Nanos = 1_000_000_000;

/// Convert microseconds to [`Nanos`].
#[inline]
pub const fn us(v: u64) -> Nanos {
    v * MICROSECOND
}

/// Convert milliseconds to [`Nanos`].
#[inline]
pub const fn ms(v: u64) -> Nanos {
    v * MILLISECOND
}

/// Round `t` up to the next multiple of `interval` (0 interval → `t`).
/// Used to batch continuous log-ship flushes onto interval boundaries.
#[inline]
pub const fn quantize_up(t: Nanos, interval: Nanos) -> Nanos {
    if interval == 0 {
        t
    } else {
        t.div_ceil(interval) * interval
    }
}

/// Format a duration for human-readable reports (e.g. `7.4ms`, `43µs`).
pub fn fmt_dur(n: Nanos) -> String {
    if n >= SECOND {
        format!("{:.2}s", n as f64 / SECOND as f64)
    } else if n >= MILLISECOND {
        format!("{:.2}ms", n as f64 / MILLISECOND as f64)
    } else if n >= MICROSECOND {
        format!("{:.1}µs", n as f64 / MICROSECOND as f64)
    } else {
        format!("{n}ns")
    }
}

/// A shared, monotone virtual clock.
///
/// Cloning a `SimClock` yields a handle to the *same* clock (it is an
/// `Rc<Cell<_>>` internally); the simulation is single-threaded by design, so
/// no atomics are needed.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    now: Rc<Cell<Nanos>>,
}

impl SimClock {
    /// A new clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Nanos {
        self.now.get()
    }

    /// Advance the clock by `delta` nanoseconds.
    #[inline]
    pub fn advance(&self, delta: Nanos) {
        self.now.set(self.now.get() + delta);
    }

    /// Move the clock forward *to* `t`. Panics if `t` is in the past —
    /// virtual time is monotone and a backwards jump is always a driver bug.
    #[inline]
    pub fn advance_to(&self, t: Nanos) {
        assert!(
            t >= self.now.get(),
            "virtual clock moved backwards: {} -> {}",
            self.now.get(),
            t
        );
        self.now.set(t);
    }
}

/// Accumulates virtual-time costs charged by kernel operations.
///
/// The kernel itself never advances a clock: it *meters* the cost of each
/// operation, and the driver (replication runtime, benchmark harness) decides
/// which timeline that cost lands on — the primary's stop phase, the backup's
/// CPU account, a client's request latency, and so on. This is the key
/// mechanism that lets one kernel implementation serve both sides of the
/// replication pair without double-counting time.
#[derive(Debug, Default)]
pub struct CostMeter {
    accum: Cell<Nanos>,
    total: Cell<Nanos>,
}

impl CostMeter {
    /// New meter with zero accumulated cost.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `ns` of virtual time.
    #[inline]
    pub fn charge(&self, ns: Nanos) {
        self.accum.set(self.accum.get() + ns);
        self.total.set(self.total.get() + ns);
    }

    /// Take (and reset) the cost accumulated since the last `take`.
    #[inline]
    pub fn take(&self) -> Nanos {
        let v = self.accum.get();
        self.accum.set(0);
        v
    }

    /// Cost accumulated since the last [`CostMeter::take`], without resetting.
    #[inline]
    pub fn peek(&self) -> Nanos {
        self.accum.get()
    }

    /// Total cost ever charged to this meter (never reset).
    #[inline]
    pub fn lifetime_total(&self) -> Nanos {
        self.total.get()
    }

    /// Refund `ns` of previously charged cost (saturating at zero).
    ///
    /// Used when a driver models *parallel* execution of work the kernel
    /// metered serially: it charges each shard's cost as usual, then refunds
    /// everything except the critical (max) shard. The refund applies to both
    /// the pending accumulator and the lifetime total so telescoped samples
    /// of [`CostMeter::lifetime_total`] stay consistent.
    #[inline]
    pub fn refund(&self, ns: Nanos) {
        self.accum.set(self.accum.get().saturating_sub(ns));
        self.total.set(self.total.get().saturating_sub(ns));
    }
}

/// A timestamped event in the miniature discrete-event queue.
///
/// Used by the replication runtime for interleaving client request arrivals,
/// epoch boundaries, heartbeats, acknowledgments, and fault injections. Events
/// with equal timestamps pop in insertion order (a stable sequence number
/// breaks ties), keeping runs deterministic.
#[derive(Debug)]
struct Scheduled<E> {
    at: Nanos,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic min-heap event queue over virtual time.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute virtual time `at`.
    pub fn schedule(&mut self, at: Nanos, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Pop the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        self.heap.pop().map(|Reverse(s)| (s.at, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances() {
        let c = SimClock::new();
        assert_eq!(c.now(), 0);
        c.advance(ms(30));
        assert_eq!(c.now(), 30 * MILLISECOND);
        let c2 = c.clone();
        c2.advance(5);
        assert_eq!(c.now(), 30 * MILLISECOND + 5, "clones share the clock");
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn clock_is_monotone() {
        let c = SimClock::new();
        c.advance(100);
        c.advance_to(50);
    }

    #[test]
    fn meter_take_and_total() {
        let m = CostMeter::new();
        m.charge(10);
        m.charge(20);
        assert_eq!(m.peek(), 30);
        assert_eq!(m.take(), 30);
        assert_eq!(m.take(), 0);
        m.charge(5);
        assert_eq!(m.lifetime_total(), 35);
    }

    #[test]
    fn meter_refund_reduces_both_counters() {
        let m = CostMeter::new();
        m.charge(100);
        m.refund(30);
        assert_eq!(m.peek(), 70);
        assert_eq!(m.lifetime_total(), 70);
        m.refund(1_000); // saturates, never underflows
        assert_eq!(m.peek(), 0);
        assert_eq!(m.lifetime_total(), 0);
    }

    #[test]
    fn meter_refund_edge_cases() {
        let m = CostMeter::new();
        // Zero refund is a no-op.
        m.charge(40);
        m.refund(0);
        assert_eq!(m.peek(), 40);
        assert_eq!(m.lifetime_total(), 40);
        // Repeated refunds compose.
        m.refund(10);
        m.refund(10);
        assert_eq!(m.peek(), 20);
        assert_eq!(m.lifetime_total(), 20);
        // A refund larger than the pending accumulator (after a take has
        // drained it) saturates the pending side at zero while the lifetime
        // total still absorbs the full amount.
        assert_eq!(m.take(), 20);
        m.charge(5);
        m.refund(15);
        assert_eq!(m.peek(), 0, "pending saturates");
        assert_eq!(m.lifetime_total(), 10, "total absorbs the full refund");
        // Refunding a meter that was never charged never underflows.
        let fresh = CostMeter::new();
        fresh.refund(100);
        assert_eq!(fresh.peek(), 0);
        assert_eq!(fresh.lifetime_total(), 0);
    }

    #[test]
    fn event_queue_orders_by_time_then_insertion() {
        let mut q = EventQueue::new();
        q.schedule(50, "b");
        q.schedule(10, "a");
        q.schedule(50, "c");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(10));
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((50, "b")), "FIFO among equal timestamps");
        assert_eq!(q.pop(), Some((50, "c")));
        assert!(q.is_empty());
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(43 * MICROSECOND), "43.0µs");
        assert_eq!(fmt_dur(7_400_000), "7.40ms");
        assert_eq!(fmt_dur(2 * SECOND), "2.00s");
        assert_eq!(fmt_dur(999), "999ns");
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(us(43), 43_000);
        assert_eq!(ms(30), 30_000_000);
    }

    #[test]
    fn quantize_up_boundaries() {
        assert_eq!(quantize_up(0, 100), 0);
        assert_eq!(quantize_up(1, 100), 100);
        assert_eq!(quantize_up(100, 100), 100);
        assert_eq!(quantize_up(101, 100), 200);
        assert_eq!(quantize_up(42, 0), 42);
    }
}
