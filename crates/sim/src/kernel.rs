//! The kernel facade: owns all subsystems and exposes the syscall surface.
//!
//! Every operation charges its modeled cost to [`Kernel::meter`]; the caller
//! (container runtime, CRIU engine, replication agent, benchmark driver)
//! decides which timeline the metered time lands on. See
//! [`crate::time::CostMeter`] for why.

use crate::cgroup::CgroupTree;
use crate::costs::CostModel;
use crate::error::{SimError, SimResult};
use crate::fs::{InodeKind, Vfs};
use crate::ftrace::{FtraceHooks, KernelFn};
use crate::ids::*;
use crate::mem::{AddressSpace, MappedFile, Perms, TrackingMode, Vma, VmaKind, WriteOutcome};
use crate::net::{InputMode, NetStack, RepairState};
use crate::ns::NsRegistry;
use crate::proc::{freeze, thaw, FdEntry, FreezeReport, FreezeStrategy, Process};
use crate::replay::{content_hash, ReplayEvent, ReplayRecorder};
use crate::time::{CostMeter, Nanos};

/// How VMA information is collected (§V-D deficiency (1)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmaCollectVia {
    /// `/proc/pid/smaps`: formatted text incl. unneeded page statistics.
    Smaps,
    /// The task-diag netlink patch: binary, no statistics.
    Netlink,
}

/// How the parasite transfers dirty-page contents (§V-D deficiency (3)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageTransferVia {
    /// Pipe between parasite and agent: multiple syscalls per chunk.
    Pipe,
    /// Shared memory region: direct copy.
    SharedMem,
}

/// One simulated kernel (one host).
#[derive(Debug)]
pub struct Kernel {
    /// Cost model (shared constants; copy per kernel so experiments can
    /// perturb one host).
    pub costs: CostModel,
    /// Virtual-time meter for everything this kernel does.
    pub meter: CostMeter,
    /// Side-meter counting only page-tracking fault costs (also included in
    /// `meter`) — lets drivers split runtime overhead into "tracking" vs
    /// "useful work" for the Fig. 3 breakdown.
    pub fault_meter: CostMeter,
    /// The VFS (page cache, inodes, mounts, block device).
    pub vfs: Vfs,
    /// Control groups.
    pub cgroups: CgroupTree,
    /// Namespaces.
    pub namespaces: NsRegistry,
    /// ftrace hook registry.
    pub ftrace: FtraceHooks,
    /// Nondeterminism recorder (hybrid checkpoint + replay). Dormant unless
    /// the `hybrid_replay` extension knob enables it.
    pub replay: ReplayRecorder,
    procs: std::collections::HashMap<Pid, Process>,
    spaces: std::collections::HashMap<AsId, AddressSpace>,
    stacks: std::collections::HashMap<NsId, NetStack>,
    pid_alloc: IdAlloc,
    tid_alloc: IdAlloc,
    as_alloc: IdAlloc,
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new(CostModel::default())
    }
}

impl Kernel {
    /// New kernel with the given cost model.
    pub fn new(costs: CostModel) -> Self {
        Kernel {
            costs,
            meter: CostMeter::new(),
            fault_meter: CostMeter::new(),
            vfs: Vfs::new(DevId(0)),
            cgroups: CgroupTree::new(),
            namespaces: NsRegistry::new(),
            ftrace: FtraceHooks::with_default_hooks(),
            replay: ReplayRecorder::default(),
            procs: std::collections::HashMap::new(),
            spaces: std::collections::HashMap::new(),
            stacks: std::collections::HashMap::new(),
            pid_alloc: IdAlloc::starting_at(100),
            tid_alloc: IdAlloc::starting_at(10_000),
            as_alloc: IdAlloc::default(),
        }
    }

    #[inline]
    fn charge(&self, ns: Nanos) {
        self.meter.charge(ns);
    }

    // ==================================================================
    // Processes
    // ==================================================================

    /// Spawn a process in `cgroup`/`netns` with a fresh address space.
    pub fn spawn_process(&mut self, ppid: Pid, cgroup: CgroupId, netns: NsId, exe: &str) -> Pid {
        let pid = Pid(self.pid_alloc.alloc() as u32);
        let mm = AsId(self.as_alloc.alloc() as u32);
        self.spaces.insert(mm, AddressSpace::new());
        self.procs
            .insert(pid, Process::new(pid, ppid, mm, cgroup, netns, exe));
        self.charge(self.costs.syscall_base * 10); // fork+exec flavor
        pid
    }

    /// Spawn a process at a *specific* pid with a specific mm (restore path).
    pub fn restore_process(&mut self, proc: Process) -> SimResult<()> {
        if self.procs.contains_key(&proc.pid) {
            return Err(SimError::Invalid(format!("{} already exists", proc.pid)));
        }
        self.spaces.entry(proc.mm).or_default();
        self.procs.insert(proc.pid, proc);
        Ok(())
    }

    /// Add a thread to `pid`.
    pub fn spawn_thread(&mut self, pid: Pid) -> SimResult<Tid> {
        let tid = Tid(self.tid_alloc.alloc() as u32);
        self.proc_mut(pid)?.spawn_thread(tid);
        self.charge(self.costs.syscall_base * 4);
        Ok(tid)
    }

    /// Remove a process (container teardown / fail-stop emulation).
    pub fn kill_process(&mut self, pid: Pid) -> SimResult<Process> {
        let p = self
            .procs
            .remove(&pid)
            .ok_or(SimError::NoSuchProcess(pid))?;
        // Drop the address space if no other process shares it.
        if !self.procs.values().any(|q| q.mm == p.mm) {
            self.spaces.remove(&p.mm);
        }
        Ok(p)
    }

    /// Immutable process access.
    pub fn proc(&self, pid: Pid) -> SimResult<&Process> {
        self.procs.get(&pid).ok_or(SimError::NoSuchProcess(pid))
    }

    /// Mutable process access.
    pub fn proc_mut(&mut self, pid: Pid) -> SimResult<&mut Process> {
        self.procs.get_mut(&pid).ok_or(SimError::NoSuchProcess(pid))
    }

    /// All pids, sorted.
    pub fn pids(&self) -> Vec<Pid> {
        let mut v: Vec<Pid> = self.procs.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Pids belonging to `cgroup`, sorted (the container's process set).
    pub fn pids_in_cgroup(&self, cgroup: CgroupId) -> Vec<Pid> {
        let mut v: Vec<Pid> = self
            .procs
            .values()
            .filter(|p| p.cgroup == cgroup)
            .map(|p| p.pid)
            .collect();
        v.sort_unstable();
        v
    }

    // ==================================================================
    // Memory
    // ==================================================================

    /// Address-space access for a pid.
    pub fn mm(&self, pid: Pid) -> SimResult<&AddressSpace> {
        let mm = self.proc(pid)?.mm;
        Ok(self.spaces.get(&mm).expect("process mm exists"))
    }

    /// Mutable address-space access for a pid.
    pub fn mm_mut(&mut self, pid: Pid) -> SimResult<&mut AddressSpace> {
        let mm = self.proc(pid)?.mm;
        Ok(self.spaces.get_mut(&mm).expect("process mm exists"))
    }

    /// mmap an anonymous region.
    pub fn mmap_anon(&mut self, pid: Pid, start: u64, len: u64, heap: bool) -> SimResult<()> {
        self.charge(self.costs.syscall_base);
        self.mm_mut(pid)?.mmap(Vma {
            start,
            len,
            perms: Perms::RW,
            kind: VmaKind::Anon,
            is_heap: heap,
            is_stack: false,
        })
    }

    /// mmap a file (fires the MappedFiles ftrace hook).
    pub fn mmap_file(
        &mut self,
        pid: Pid,
        start: u64,
        len: u64,
        ino: Ino,
        perms: Perms,
    ) -> SimResult<()> {
        self.charge(self.costs.syscall_base);
        self.ftrace.hit(KernelFn::MmapFile);
        self.mm_mut(pid)?
            .mmap_file(start, len, MappedFile { ino, file_off: 0 }, perms)
    }

    /// Write guest memory, charging copy + tracking-fault costs.
    pub fn mem_write(&mut self, pid: Pid, addr: u64, data: &[u8]) -> SimResult<WriteOutcome> {
        let len = data.len() as u64;
        let mode = self.mm(pid)?.tracking();
        let out = self.mm_mut(pid)?.write(addr, data)?;
        let fault_cost = match mode {
            TrackingMode::None | TrackingMode::HardwareLog => 0,
            TrackingMode::SoftDirty => self.costs.soft_dirty_fault,
            TrackingMode::WriteProtect => self.costs.vmexit_fault,
        };
        // COW write-protect faults (eager copy-before-write of pages a
        // deferred checkpoint still holds) are runtime overhead too.
        let fault_total = out.tracking_faults as u64 * fault_cost
            + out.cow_faults as u64 * self.costs.cow_fault;
        self.charge(len * self.costs.copy_per_byte + fault_total);
        self.fault_meter.charge(fault_total);
        Ok(out)
    }

    /// Read guest memory.
    pub fn mem_read(&mut self, pid: Pid, addr: u64, buf: &mut [u8]) -> SimResult<()> {
        self.charge(buf.len() as u64 * self.costs.copy_per_byte);
        self.mm(pid)?.read(addr, buf)
    }

    /// Tracking-fault cost for the current mode of `pid`'s address space —
    /// used by drivers that account runtime overhead separately.
    pub fn fault_cost(&self, pid: Pid) -> SimResult<Nanos> {
        Ok(match self.mm(pid)?.tracking() {
            TrackingMode::None | TrackingMode::HardwareLog => 0,
            TrackingMode::SoftDirty => self.costs.soft_dirty_fault,
            TrackingMode::WriteProtect => self.costs.vmexit_fault,
        })
    }

    /// Drain the hardware page-modification log (PML extension): returns the
    /// dirty vpns, charging per *logged* page instead of a full address-space
    /// scan — the Phantasy-style cost advantage over `/proc/pid/pagemap`.
    pub fn pml_drain(&mut self, pid: Pid) -> SimResult<Vec<u64>> {
        let dirty = self.mm(pid)?.soft_dirty_vpns();
        self.charge(self.costs.syscall_base + dirty.len() as u64 * self.costs.pml_drain_per_page);
        Ok(dirty)
    }

    // ==================================================================
    // Files
    // ==================================================================

    /// Create + open a regular file.
    pub fn create_file(&mut self, pid: Pid, path: &str, now: Nanos) -> SimResult<Fd> {
        self.charge(self.costs.syscall_base * 2);
        let ino = self.vfs.create(path, InodeKind::Regular, now)?;
        Ok(self.proc_mut(pid)?.install_fd(FdEntry::File {
            ino,
            offset: 0,
            flags: 0,
        }))
    }

    /// Open an existing file.
    pub fn open(&mut self, pid: Pid, path: &str) -> SimResult<Fd> {
        self.charge(self.costs.syscall_base * 2);
        let ino = self.vfs.lookup(path)?;
        Ok(self.proc_mut(pid)?.install_fd(FdEntry::File {
            ino,
            offset: 0,
            flags: 0,
        }))
    }

    /// Positional write through an fd.
    pub fn pwrite(
        &mut self,
        pid: Pid,
        fd: Fd,
        offset: u64,
        data: &[u8],
        now: Nanos,
    ) -> SimResult<usize> {
        self.charge(self.costs.syscall_base + data.len() as u64 * self.costs.copy_per_byte);
        let ino = self.file_ino(pid, fd)?;
        self.vfs.pwrite(ino, offset, data, now)
    }

    /// Positional read through an fd.
    pub fn pread(&mut self, pid: Pid, fd: Fd, offset: u64, buf: &mut [u8]) -> SimResult<usize> {
        self.charge(self.costs.syscall_base + buf.len() as u64 * self.costs.copy_per_byte);
        let ino = self.file_ino(pid, fd)?;
        self.vfs.pread(ino, offset, buf)
    }

    /// fsync an fd: dirty cache pages hit the (replicated) block device.
    pub fn fsync(&mut self, pid: Pid, fd: Fd) -> SimResult<usize> {
        let ino = self.file_ino(pid, fd)?;
        let pages = self.vfs.fsync(ino)?;
        self.charge(self.costs.syscall_base + pages as u64 * self.costs.fs_flush_per_page);
        Ok(pages)
    }

    fn file_ino(&self, pid: Pid, fd: Fd) -> SimResult<Ino> {
        match self.proc(pid)?.fd(fd)? {
            FdEntry::File { ino, .. } => Ok(*ino),
            FdEntry::Socket(_) => Err(SimError::Invalid(format!("{fd} is a socket"))),
        }
    }

    /// Mount (fires ftrace).
    pub fn mount(&mut self, source: &str, target: &str, fstype: &str) -> MountId {
        self.charge(self.costs.syscall_base * 3);
        self.ftrace.hit(KernelFn::Mount);
        self.vfs.mount(source, target, fstype)
    }

    /// Unmount (fires ftrace).
    pub fn umount(&mut self, id: MountId) -> SimResult<()> {
        self.charge(self.costs.syscall_base * 3);
        self.ftrace.hit(KernelFn::Umount);
        self.vfs.umount(id)
    }

    /// mknod (fires ftrace).
    pub fn mknod(&mut self, path: &str, now: Nanos) -> SimResult<Ino> {
        self.charge(self.costs.syscall_base * 2);
        self.ftrace.hit(KernelFn::Mknod);
        self.vfs.create(path, InodeKind::Device, now)
    }

    /// `sethostname`-style namespace config update (fires the ftrace
    /// NsModify hook — invalidates the §V-B namespace cache entry).
    pub fn set_ns_config(&mut self, ns: NsId, config: Vec<u8>) -> SimResult<()> {
        self.charge(self.costs.syscall_base);
        self.ftrace.hit(KernelFn::NsModify);
        if self.namespaces.set_config(ns, config) {
            Ok(())
        } else {
            Err(SimError::Invalid(format!("no namespace {ns}")))
        }
    }

    /// Cgroup limit/weight update (fires the ftrace CgroupModify hook).
    pub fn set_cgroup_limits(
        &mut self,
        cg: CgroupId,
        cpu_shares: u32,
        memory_limit: u64,
    ) -> SimResult<()> {
        self.charge(self.costs.syscall_base);
        self.ftrace.hit(KernelFn::CgroupModify);
        let g = self
            .cgroups
            .get_mut(cg)
            .ok_or_else(|| SimError::Invalid(format!("no cgroup {cg}")))?;
        g.cpu_shares = cpu_shares;
        g.memory_limit = memory_limit;
        Ok(())
    }

    // ==================================================================
    // Network
    // ==================================================================

    /// Create a network stack for a namespace at `addr`.
    pub fn create_stack(&mut self, ns: NsId, addr: u32, input_mode: InputMode) {
        let rto = self.costs.tcp_rto_default;
        self.stacks.insert(ns, NetStack::new(addr, rto, input_mode));
    }

    /// Remove a namespace's stack (network-namespace teardown at failover).
    pub fn drop_stack(&mut self, ns: NsId) -> Option<NetStack> {
        self.stacks.remove(&ns)
    }

    /// Stack access.
    pub fn stack(&self, ns: NsId) -> SimResult<&NetStack> {
        self.stacks
            .get(&ns)
            .ok_or(SimError::Invalid(format!("no stack for {ns}")))
    }

    /// Mutable stack access.
    pub fn stack_mut(&mut self, ns: NsId) -> SimResult<&mut NetStack> {
        self.stacks
            .get_mut(&ns)
            .ok_or(SimError::Invalid(format!("no stack for {ns}")))
    }

    /// All `(ns, addr)` pairs (for cluster routing).
    pub fn stack_addrs(&self) -> Vec<(NsId, u32)> {
        let mut v: Vec<(NsId, u32)> = self.stacks.iter().map(|(&ns, s)| (ns, s.addr)).collect();
        v.sort_unstable();
        v
    }

    /// Socket create within `pid`'s netns; installs an fd.
    pub fn socket(&mut self, pid: Pid) -> SimResult<(Fd, SockId)> {
        self.charge(self.costs.syscall_base);
        let ns = self.proc(pid)?.netns;
        let sid = self.stack_mut(ns)?.socket();
        let fd = self.proc_mut(pid)?.install_fd(FdEntry::Socket(sid));
        Ok((fd, sid))
    }

    /// send(2) on a socket fd, charging per-packet processing.
    pub fn sock_send(&mut self, pid: Pid, fd: Fd, data: &[u8]) -> SimResult<usize> {
        self.charge(
            self.costs.syscall_base
                + data.len() as u64 * self.costs.copy_per_byte
                + self.costs.packet_process,
        );
        let (ns, sid) = self.sock_ref(pid, fd)?;
        let n = self.stack_mut(ns)?.send(sid, data)?;
        if self.replay.active() {
            self.charge(self.costs.log_append_per_event);
            self.replay.record(ReplayEvent::SockSend {
                pid,
                fd,
                len: n as u32,
                hash: content_hash(&data[..n]),
            });
        }
        Ok(n)
    }

    /// recv(2) on a socket fd. Under hybrid replay the returned payload, the
    /// stack-wide delivery order, and the socket's stream offset are recorded
    /// — the primary nondeterminism source the backup must reproduce.
    pub fn sock_recv(&mut self, pid: Pid, fd: Fd, max: usize) -> SimResult<Vec<u8>> {
        self.charge(self.costs.syscall_base);
        let (ns, sid) = self.sock_ref(pid, fd)?;
        let data = self.stack_mut(ns)?.recv(sid, max)?;
        self.charge(data.len() as u64 * self.costs.copy_per_byte);
        if self.replay.active() && !data.is_empty() {
            let order = self.stack(ns)?.delivered_seq();
            let off = self.stack(ns)?.sock(sid)?.delivered_bytes - data.len() as u64;
            self.charge(self.costs.log_append_per_event);
            self.replay.record(ReplayEvent::SockRecv {
                pid,
                fd,
                len: data.len() as u32,
                hash: content_hash(&data),
                order,
                off,
            });
        }
        Ok(data)
    }

    /// A scheduling point: advance `pid`'s leader-thread scheduling sequence
    /// and (under hybrid replay) record it, so replay reproduces the same
    /// thread interleaving.
    pub fn sched_point(&mut self, pid: Pid) -> SimResult<u64> {
        let seq = self
            .proc_mut(pid)?
            .threads
            .first_mut()
            .map(|t| t.note_sched())
            .unwrap_or(0);
        if self.replay.active() {
            self.charge(self.costs.log_append_per_event);
            self.replay.record(ReplayEvent::Sched { pid, seq });
        }
        Ok(seq)
    }

    /// A guest clock read (gettimeofday flavor): charges the syscall and
    /// (under hybrid replay) records the returned value so replay feeds the
    /// identical timestamp back.
    pub fn timer_read(&mut self, pid: Pid, now: Nanos) -> Nanos {
        self.charge(self.costs.syscall_base);
        if self.replay.active() {
            self.charge(self.costs.log_append_per_event);
            self.replay.record(ReplayEvent::TimerRead { pid, at: now });
        }
        now
    }

    fn sock_ref(&self, pid: Pid, fd: Fd) -> SimResult<(NsId, SockId)> {
        let p = self.proc(pid)?;
        match p.fd(fd)? {
            FdEntry::Socket(sid) => Ok((p.netns, *sid)),
            FdEntry::File { .. } => Err(SimError::Invalid(format!("{fd} is a file"))),
        }
    }

    // ==================================================================
    // Checkpoint surface
    // ==================================================================

    /// Freeze every process in `cgroup` (§II-B), charging the elapsed time.
    pub fn freeze_cgroup(
        &mut self,
        cgroup: CgroupId,
        strategy: FreezeStrategy,
    ) -> SimResult<FreezeReport> {
        let pids = self.pids_in_cgroup(cgroup);
        if pids.is_empty() {
            return Err(SimError::FreezerState("no processes in cgroup"));
        }
        let costs = self.costs.clone();
        let mut procs: Vec<&mut Process> = self
            .procs
            .values_mut()
            .filter(|p| p.cgroup == cgroup)
            .collect();
        let report = freeze(&mut procs, strategy, &costs);
        if let Some(g) = self.cgroups.get_mut(cgroup) {
            g.frozen = true;
        }
        self.charge(report.elapsed);
        Ok(report)
    }

    /// Thaw `cgroup`.
    pub fn thaw_cgroup(&mut self, cgroup: CgroupId) -> SimResult<()> {
        let costs = self.costs.clone();
        let mut procs: Vec<&mut Process> = self
            .procs
            .values_mut()
            .filter(|p| p.cgroup == cgroup)
            .collect();
        if procs.is_empty() {
            return Err(SimError::FreezerState("no processes in cgroup"));
        }
        let t = thaw(&mut procs, &costs);
        if let Some(g) = self.cgroups.get_mut(cgroup) {
            g.frozen = false;
        }
        self.charge(t);
        Ok(())
    }

    /// `clear_refs` for a pid: re-arm soft-dirty tracking.
    pub fn clear_refs(&mut self, pid: Pid) -> SimResult<u64> {
        let walked = self.mm_mut(pid)?.clear_refs();
        self.charge(self.costs.syscall_base + walked * self.costs.clear_refs_per_page);
        Ok(walked)
    }

    /// `pagemap` scan: soft-dirty vpns. Charges per *mapped* page (§VII-C).
    pub fn pagemap_dirty(&mut self, pid: Pid) -> SimResult<Vec<u64>> {
        let mapped = self.mm(pid)?.mapped_pages();
        self.charge(self.costs.syscall_base + mapped * self.costs.pagemap_scan_per_page);
        Ok(self.mm(pid)?.soft_dirty_vpns())
    }

    /// Collect VMA information via smaps or netlink (§V-D), charging
    /// accordingly. Returns VMAs in address order.
    pub fn collect_vmas(&mut self, pid: Pid, via: VmaCollectVia) -> SimResult<Vec<Vma>> {
        let mm = self.mm(pid)?;
        let nvmas = mm.vma_count() as u64;
        let npages = mm.mapped_pages();
        let cost = match via {
            VmaCollectVia::Smaps => {
                nvmas * self.costs.smaps_per_vma + npages * self.costs.smaps_per_page_stats
            }
            VmaCollectVia::Netlink => nvmas * self.costs.netlink_per_vma,
        };
        self.charge(cost);
        Ok(self.mm(pid)?.vmas().cloned().collect())
    }

    /// `stat` every memory-mapped file of `pid` (§V cause (1)); returns the
    /// count. Skipped entirely when the mapped-files cache is valid.
    pub fn stat_mapped_files(&mut self, pid: Pid) -> SimResult<u64> {
        let n = self.mm(pid)?.mapped_file_count() as u64;
        self.charge(n * self.costs.stat_per_file);
        Ok(n)
    }

    /// Copy out page contents for a set of vpns via the parasite (§V-D),
    /// charging per the transfer mechanism.
    pub fn read_pages(
        &mut self,
        pid: Pid,
        vpns: &[u64],
        via: PageTransferVia,
    ) -> SimResult<Vec<(u64, crate::mem::PageBuf)>> {
        let per_page = match via {
            PageTransferVia::SharedMem => self.costs.page_copy,
            PageTransferVia::Pipe => self.costs.page_copy + self.costs.parasite_pipe_per_page,
        };
        self.charge(vpns.len() as u64 * per_page);
        let mm = self.mm(pid)?;
        let mut out = Vec::with_capacity(vpns.len());
        for &vpn in vpns {
            out.push((vpn, mm.snapshot_page(vpn)?));
        }
        Ok(out)
    }

    /// Copy-on-write checkpoint pause: write-protect `vpns` instead of
    /// copying them, charging only the cheap per-page PTE work. The pages
    /// are copied out after resume by [`Self::cow_drain_pages`] (or eagerly
    /// by a write fault), moving the dominant stop-phase cost into the next
    /// execution phase.
    pub fn cow_protect_pages(&mut self, pid: Pid, vpns: &[u64]) -> SimResult<()> {
        self.charge(self.costs.syscall_base + vpns.len() as u64 * self.costs.cow_protect_per_page);
        self.mm_mut(pid)?.cow_protect(vpns);
        Ok(())
    }

    /// Background-copier step: collect fault-staged pages (already paid for
    /// at fault time) plus up to `max` drained pages (charged per page).
    /// Returns the combined `(vpn, contents)` batch.
    pub fn cow_drain_pages(
        &mut self,
        pid: Pid,
        max: usize,
    ) -> SimResult<Vec<(u64, crate::mem::PageBuf)>> {
        let mm = self.mm_mut(pid)?;
        let mut out = mm.take_cow_staged();
        let drained = mm.cow_drain(max);
        self.charge(drained.len() as u64 * self.costs.cow_drain_per_page);
        out.extend(drained);
        Ok(out)
    }

    /// Pages a deferred checkpoint still owes for `pid`: protected and not
    /// yet drained or faulted. (Fault-staged copies are collected by the
    /// next [`Self::cow_drain_pages`] call regardless of this count.)
    pub fn cow_pending(&self, pid: Pid) -> SimResult<usize> {
        Ok(self.mm(pid)?.cow_protected_count())
    }

    /// COW write-protect faults taken by `pid` since the last call.
    pub fn take_cow_faults(&mut self, pid: Pid) -> SimResult<u64> {
        Ok(self.mm_mut(pid)?.take_cow_faults())
    }

    /// Install pages at restore time.
    pub fn install_pages(
        &mut self,
        pid: Pid,
        pages: &[(u64, crate::mem::PageBuf)],
    ) -> SimResult<()> {
        self.charge(pages.len() as u64 * self.costs.page_restore);
        let mm = self.mm_mut(pid)?;
        for (vpn, data) in pages {
            mm.install_page(*vpn, data)?;
        }
        Ok(())
    }

    /// Per-thread state collection cost (registers, sigmask, timers, sched —
    /// §VII-C). The state itself is read from the process struct by CRIU.
    pub fn charge_thread_state(&mut self, threads: u64) {
        self.charge(threads * self.costs.thread_state);
    }

    /// Per-process base collection cost (fd walk, proc metadata — §VII-C).
    pub fn charge_process_state(&mut self, fds: u64) {
        self.charge(self.costs.process_state_base + fds * self.costs.fd_state);
    }

    /// Dump a namespace's sockets via repair mode, charging per socket.
    pub fn checkpoint_sockets(&mut self, ns: NsId) -> SimResult<(Vec<u16>, Vec<RepairState>)> {
        let per = self.costs.socket_repair_dump;
        let stack = self.stack_mut(ns)?;
        let (ports, states) = stack.checkpoint_sockets();
        self.charge(states.len() as u64 * per);
        Ok((ports, states))
    }

    /// Restore sockets into a namespace via repair mode, charging per socket.
    /// `optimized_rto` selects the §V-E 200 ms minimum vs the 1 s default.
    pub fn restore_sockets(
        &mut self,
        ns: NsId,
        listeners: &[u16],
        states: &[RepairState],
        optimized_rto: bool,
    ) -> SimResult<Vec<SockId>> {
        let rto = if optimized_rto {
            self.costs.tcp_rto_repair_min
        } else {
            self.costs.tcp_rto_default
        };
        let per = self.costs.socket_repair_restore;
        self.charge(states.len() as u64 * per);
        let stack = self.stack_mut(ns)?;
        stack.restore_sockets(listeners, states, rto)
    }

    /// `fgetfc` (§III): DNC page-cache + inode entries, charged per entry.
    pub fn fgetfc(&mut self) -> (crate::fs::FsCacheCheckpoint, Vec<crate::fs::Inode>) {
        let (pages, inodes) = self.vfs.fgetfc();
        self.charge(
            self.costs.syscall_base
                + pages.pages.len() as u64 * self.costs.fgetfc_per_page
                + inodes.len() as u64 * self.costs.fgetfc_per_inode,
        );
        (pages, inodes)
    }

    /// CRIU-stock alternative to `fgetfc`: flush the whole fs cache, charging
    /// per flushed page (§III's "prohibitive overhead" path).
    pub fn flush_fs_cache(&mut self) -> usize {
        let pages = self.vfs.sync_all();
        self.charge(pages as u64 * self.costs.fs_flush_per_page);
        pages
    }

    /// Collect namespace state (uncached cost: up to 100 ms, §I).
    pub fn collect_namespaces(&mut self, set: &crate::ns::NsSet) -> Vec<crate::ns::Namespace> {
        self.charge(self.costs.ns_collect);
        self.namespaces.snapshot_set(set)
    }

    /// Collect cgroup state (uncached).
    pub fn collect_cgroups(&mut self) -> Vec<crate::cgroup::Cgroup> {
        self.charge(self.costs.cgroup_collect);
        self.cgroups.snapshot()
    }

    /// Collect the mount table (uncached).
    pub fn collect_mounts(&mut self) -> Vec<crate::fs::Mount> {
        self.charge(self.costs.mounts_collect);
        self.vfs.mounts().to_vec()
    }

    /// Collect device files (uncached).
    pub fn collect_devfiles(&mut self) -> Vec<crate::fs::Inode> {
        self.charge(self.costs.devfiles_collect);
        let mut v: Vec<crate::fs::Inode> = self
            .vfs
            .paths()
            .filter_map(|(_, &ino)| self.vfs.inode(ino).ok())
            .filter(|i| i.kind == InodeKind::Device)
            .cloned()
            .collect();
        v.sort_by_key(|i| i.ino);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::TrackingMode;
    use crate::time::{MICROSECOND, MILLISECOND};

    fn kernel_with_container() -> (Kernel, Pid, CgroupId, NsId) {
        let mut k = Kernel::default();
        let cg = k.cgroups.create("/docker/c1");
        let ns = k.namespaces.create_set("c1").net;
        k.create_stack(ns, 10, InputMode::Buffer);
        let pid = k.spawn_process(Pid(1), cg, ns, "/bin/server");
        k.mmap_anon(pid, 0x10000, 0x40000, true).unwrap();
        (k, pid, cg, ns)
    }

    #[test]
    fn spawn_and_memory_roundtrip() {
        let (mut k, pid, _, _) = kernel_with_container();
        k.mem_write(pid, 0x10000, b"state").unwrap();
        let mut buf = [0u8; 5];
        k.mem_read(pid, 0x10000, &mut buf).unwrap();
        assert_eq!(&buf, b"state");
        assert!(k.meter.peek() > 0, "operations charge time");
    }

    #[test]
    fn tracking_fault_costs_differ_by_mode() {
        let (mut k, pid, _, _) = kernel_with_container();
        k.mm_mut(pid).unwrap().set_tracking(TrackingMode::SoftDirty);
        k.clear_refs(pid).unwrap();
        k.meter.take();
        k.mem_write(pid, 0x10000, b"x").unwrap();
        let soft = k.meter.take();

        let (mut k2, pid2, _, _) = kernel_with_container();
        k2.mm_mut(pid2)
            .unwrap()
            .set_tracking(TrackingMode::WriteProtect);
        k2.clear_refs(pid2).unwrap();
        k2.meter.take();
        k2.mem_write(pid2, 0x10000, b"x").unwrap();
        let wp = k2.meter.take();
        assert!(
            wp > soft,
            "VM-exit tracking ({wp}) must cost more than soft-dirty ({soft})"
        );
    }

    #[test]
    fn vma_collection_costs_smaps_vs_netlink() {
        let (mut k, pid, _, _) = kernel_with_container();
        k.meter.take();
        let v1 = k.collect_vmas(pid, VmaCollectVia::Smaps).unwrap();
        let smaps_cost = k.meter.take();
        let v2 = k.collect_vmas(pid, VmaCollectVia::Netlink).unwrap();
        let netlink_cost = k.meter.take();
        assert_eq!(v1, v2, "both interfaces return the same VMAs");
        assert!(
            smaps_cost > 5 * netlink_cost,
            "smaps ({smaps_cost}) must dwarf netlink ({netlink_cost}) — §V-D"
        );
    }

    #[test]
    fn page_transfer_pipe_vs_shm() {
        let (mut k, pid, _, _) = kernel_with_container();
        k.mem_write(pid, 0x10000, b"page").unwrap();
        let vpns = [0x10u64];
        k.meter.take();
        let p1 = k.read_pages(pid, &vpns, PageTransferVia::Pipe).unwrap();
        let pipe_cost = k.meter.take();
        let p2 = k
            .read_pages(pid, &vpns, PageTransferVia::SharedMem)
            .unwrap();
        let shm_cost = k.meter.take();
        assert_eq!(p1[0].1, p2[0].1);
        assert_eq!(pipe_cost - shm_cost, k.costs.parasite_pipe_per_page);
    }

    #[test]
    fn freeze_thaw_through_kernel() {
        let (mut k, pid, cg, _) = kernel_with_container();
        k.spawn_thread(pid).unwrap();
        k.meter.take();
        let r = k.freeze_cgroup(cg, FreezeStrategy::BusyPoll).unwrap();
        assert_eq!(r.threads, 2);
        assert!(k.cgroups.get(cg).unwrap().frozen);
        assert!(k.meter.take() >= r.elapsed);
        k.thaw_cgroup(cg).unwrap();
        assert!(!k.cgroups.get(cg).unwrap().frozen);
    }

    #[test]
    fn freeze_empty_cgroup_errors() {
        let mut k = Kernel::default();
        let cg = k.cgroups.create("/empty");
        assert!(k.freeze_cgroup(cg, FreezeStrategy::BusyPoll).is_err());
    }

    #[test]
    fn soft_dirty_cycle_via_syscalls() {
        let (mut k, pid, _, _) = kernel_with_container();
        k.mm_mut(pid).unwrap().set_tracking(TrackingMode::SoftDirty);
        k.mem_write(pid, 0x10000, b"seed").unwrap();
        k.clear_refs(pid).unwrap();
        assert!(k.pagemap_dirty(pid).unwrap().is_empty());
        k.mem_write(pid, 0x12000, b"dirty").unwrap();
        assert_eq!(k.pagemap_dirty(pid).unwrap(), vec![0x12]);
    }

    #[test]
    fn pagemap_charges_by_footprint_not_dirty_count() {
        let (mut k, pid, _, _) = kernel_with_container();
        k.meter.take();
        k.pagemap_dirty(pid).unwrap();
        let cost = k.meter.take();
        let mapped = k.mm(pid).unwrap().mapped_pages();
        assert_eq!(
            cost,
            k.costs.syscall_base + mapped * k.costs.pagemap_scan_per_page
        );
    }

    #[test]
    fn file_io_through_fds() {
        let (mut k, pid, _, _) = kernel_with_container();
        let fd = k.create_file(pid, "/data/log", 0).unwrap();
        k.pwrite(pid, fd, 0, b"entry", 1).unwrap();
        let mut buf = [0u8; 5];
        assert_eq!(k.pread(pid, fd, 0, &mut buf).unwrap(), 5);
        assert_eq!(&buf, b"entry");
        assert_eq!(k.vfs.disk.pending_writes(), 0);
        let flushed = k.fsync(pid, fd).unwrap();
        assert_eq!(flushed, 1);
        assert_eq!(
            k.vfs.disk.pending_writes(),
            1,
            "fsync reaches the replicated device"
        );
    }

    #[test]
    fn socket_via_fds_and_checkpoint() {
        let (mut k, pid, _, ns) = kernel_with_container();
        let (fd, sid) = k.socket(pid).unwrap();
        // Bind+listen through the stack directly (the runtime does this).
        k.stack_mut(ns).unwrap().bind(sid, 80).unwrap();
        k.stack_mut(ns).unwrap().listen(sid).unwrap();
        let (ports, states) = k.checkpoint_sockets(ns).unwrap();
        assert_eq!(ports, vec![80]);
        assert!(states.is_empty(), "listener is not an established socket");
        assert!(k.sock_recv(pid, fd, 10).unwrap().is_empty());
    }

    #[test]
    fn ftrace_fires_on_ns_and_cgroup_mutation() {
        let (mut k, _, cg, ns) = kernel_with_container();
        k.ftrace.drain_signals();
        k.set_ns_config(ns, b"renamed-host".to_vec()).unwrap();
        k.set_cgroup_limits(cg, 512, 1 << 30).unwrap();
        let sigs = k.ftrace.drain_signals();
        assert!(sigs.contains(&crate::ftrace::StateComponent::Namespaces));
        assert!(sigs.contains(&crate::ftrace::StateComponent::Cgroups));
        assert_eq!(k.namespaces.get(ns).unwrap().config, b"renamed-host");
        assert_eq!(k.cgroups.get(cg).unwrap().cpu_shares, 512);
        // Error paths.
        assert!(k.set_ns_config(NsId(9999), vec![]).is_err());
        assert!(k.set_cgroup_limits(CgroupId(9999), 1, 1).is_err());
    }

    #[test]
    fn ftrace_fires_on_mount_and_mmap() {
        let (mut k, pid, _, _) = kernel_with_container();
        k.ftrace.drain_signals();
        k.mount("tmpfs", "/tmp", "tmpfs");
        let ino = k.vfs.create("/lib/libc.so", InodeKind::Regular, 0).unwrap();
        k.mmap_file(pid, 0x7f00_0000_0000, 0x2000, ino, Perms::RX)
            .unwrap();
        let sigs = k.ftrace.drain_signals();
        assert!(sigs.contains(&crate::ftrace::StateComponent::Mounts));
        assert!(sigs.contains(&crate::ftrace::StateComponent::MappedFiles));
    }

    #[test]
    fn infrequent_collection_costs_match_paper() {
        let (mut k, _, _, _) = kernel_with_container();
        let set = crate::ns::NsSet {
            pid: NsId(1),
            net: NsId(2),
            mnt: NsId(3),
            uts: NsId(4),
            ipc: NsId(5),
            user: NsId(6),
        };
        k.meter.take();
        k.collect_namespaces(&set);
        assert_eq!(
            k.meter.take(),
            100 * MILLISECOND,
            "§I: ns collection up to 100ms"
        );
        k.collect_cgroups();
        k.collect_mounts();
        k.collect_devfiles();
        let rest = k.meter.take();
        assert_eq!(rest, 55 * MILLISECOND, "cgroups+mounts+devfiles");
    }

    #[test]
    fn fgetfc_charges_per_entry() {
        let (mut k, pid, _, _) = kernel_with_container();
        let fd = k.create_file(pid, "/f", 0).unwrap();
        k.pwrite(pid, fd, 0, &vec![7u8; 3 * crate::PAGE_SIZE], 1)
            .unwrap();
        k.meter.take();
        let (pages, inodes) = k.fgetfc();
        assert_eq!(pages.pages.len(), 3);
        assert!(!inodes.is_empty());
        let cost = k.meter.take();
        assert!(cost < MILLISECOND, "fgetfc is cheap ({cost}ns)");
        // Contrast with the stock flush path.
        k.pwrite(pid, fd, 0, &vec![8u8; 3 * crate::PAGE_SIZE], 2)
            .unwrap();
        k.meter.take();
        k.flush_fs_cache();
        assert!(k.meter.take() > cost, "flush costs more than fgetfc");
    }

    #[test]
    fn kill_process_cleans_up() {
        let (mut k, pid, cg, _) = kernel_with_container();
        let mm = k.proc(pid).unwrap().mm;
        k.kill_process(pid).unwrap();
        assert!(k.proc(pid).is_err());
        assert!(!k.spaces.contains_key(&mm));
        assert!(k.pids_in_cgroup(cg).is_empty());
        assert!(k.kill_process(pid).is_err());
    }

    #[test]
    fn cow_protect_is_cheaper_than_copy_and_drain_pays_later() {
        let (mut k, pid, _, _) = kernel_with_container();
        k.mm_mut(pid).unwrap().set_tracking(TrackingMode::SoftDirty);
        let vpns: Vec<u64> = (0x10..0x20).collect();
        for &v in &vpns {
            k.mem_write(pid, v * crate::PAGE_SIZE as u64, &[v as u8; 8])
                .unwrap();
        }
        k.meter.take();
        k.read_pages(pid, &vpns, PageTransferVia::SharedMem).unwrap();
        let eager = k.meter.take();
        k.cow_protect_pages(pid, &vpns).unwrap();
        let protect = k.meter.take();
        assert!(
            protect * 5 < eager,
            "protect ({protect}) must be far cheaper than eager copy ({eager})"
        );
        assert_eq!(k.cow_pending(pid).unwrap(), vpns.len());
        let batch = k.cow_drain_pages(pid, 100).unwrap();
        let drain = k.meter.take();
        assert_eq!(batch.len(), vpns.len());
        assert_eq!(batch[0].1[0], 0x10, "drained contents are real");
        assert_eq!(drain, vpns.len() as u64 * k.costs.cow_drain_per_page);
        assert_eq!(k.cow_pending(pid).unwrap(), 0);
    }

    #[test]
    fn cow_fault_charges_runtime_overhead_and_drain_skips_it() {
        let (mut k, pid, _, _) = kernel_with_container();
        k.cow_protect_pages(pid, &[0x10]).unwrap();
        k.meter.take();
        k.fault_meter.take();
        k.mem_write(pid, 0x10000, b"race").unwrap();
        assert!(k.meter.take() >= k.costs.cow_fault);
        assert!(
            k.fault_meter.take() >= k.costs.cow_fault,
            "COW faults count as runtime tracking overhead"
        );
        assert_eq!(k.take_cow_faults(pid).unwrap(), 1);
        k.meter.take();
        let batch = k.cow_drain_pages(pid, 100).unwrap();
        assert_eq!(batch.len(), 1, "fault-staged page is handed over");
        assert_eq!(k.meter.take(), 0, "its copy was already paid at fault time");
    }

    #[test]
    fn thread_and_process_state_charges() {
        let (mut k, _, _, _) = kernel_with_container();
        k.meter.take();
        k.charge_thread_state(32);
        let t = k.meter.take();
        assert!(
            (3 * MILLISECOND..5 * MILLISECOND).contains(&t),
            "§VII-C: 32 threads ≈ 4ms, got {}us",
            t / MICROSECOND
        );
    }
}
