//! A cluster of simulated hosts joined by virtual links.
//!
//! Mirrors the paper's testbed (§VI): a primary and a backup host joined by a
//! dedicated replication link, plus a client host on a slower link. The
//! cluster routes packets between the hosts' network stacks and supports the
//! two fault-injection mechanisms of §VII-A: fail-stop emulation by blocking
//! all of a host's traffic (the paper uses `sch_plug` for this) and "manually
//! unplugging the network cable".

use crate::ids::{HostId, NsId};
use crate::kernel::Kernel;
use crate::net::Packet;
use crate::time::SimClock;
use std::collections::{HashMap, HashSet};

/// Counters from one routing pump.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpStats {
    /// Packets delivered.
    pub delivered: u64,
    /// Payload+header bytes delivered.
    pub bytes: u64,
    /// Packets dropped (partitioned host or unroutable address).
    pub dropped: u64,
}

impl PumpStats {
    fn absorb(&mut self, other: PumpStats) {
        self.delivered += other.delivered;
        self.bytes += other.bytes;
        self.dropped += other.dropped;
    }
}

/// The cluster: hosts + routing table + shared virtual clock.
#[derive(Debug)]
pub struct Cluster {
    kernels: Vec<Kernel>,
    routes: HashMap<u32, (usize, NsId)>,
    partitioned: HashSet<usize>,
    /// Shared virtual clock (drivers advance it; the cluster only reads it).
    pub clock: SimClock,
    totals: PumpStats,
}

impl Default for Cluster {
    fn default() -> Self {
        Self::new()
    }
}

impl Cluster {
    /// Empty cluster.
    pub fn new() -> Self {
        Cluster {
            kernels: Vec::new(),
            routes: HashMap::new(),
            partitioned: HashSet::new(),
            clock: SimClock::new(),
            totals: PumpStats::default(),
        }
    }

    /// Add a host; returns its id.
    pub fn add_host(&mut self, kernel: Kernel) -> HostId {
        self.kernels.push(kernel);
        HostId(self.kernels.len() as u32 - 1)
    }

    /// Host kernel access.
    pub fn host(&self, id: HostId) -> &Kernel {
        &self.kernels[id.0 as usize]
    }

    /// Mutable host kernel access.
    pub fn host_mut(&mut self, id: HostId) -> &mut Kernel {
        &mut self.kernels[id.0 as usize]
    }

    /// Mutable access to two distinct hosts at once (primary + backup).
    /// Panics if `a == b`.
    pub fn two_hosts_mut(&mut self, a: HostId, b: HostId) -> (&mut Kernel, &mut Kernel) {
        let (ai, bi) = (a.0 as usize, b.0 as usize);
        assert_ne!(ai, bi, "two_hosts_mut requires distinct hosts");
        if ai < bi {
            let (left, right) = self.kernels.split_at_mut(bi);
            (&mut left[ai], &mut right[0])
        } else {
            let (left, right) = self.kernels.split_at_mut(ai);
            (&mut right[0], &mut left[bi])
        }
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.kernels.len()
    }

    /// Register (or move) the route for `addr` to `(host, ns)`.
    ///
    /// At failover the backup broadcasts a gratuitous ARP reply to take over
    /// the failed primary's address (Table II's ARP component); that is this
    /// call with the backup's host id.
    pub fn bind_addr(&mut self, addr: u32, host: HostId, ns: NsId) {
        self.routes.insert(addr, (host.0 as usize, ns));
    }

    /// Where `addr` currently routes.
    pub fn route_of(&self, addr: u32) -> Option<(HostId, NsId)> {
        self.routes
            .get(&addr)
            .map(|&(h, ns)| (HostId(h as u32), ns))
    }

    /// Emulate a fail-stop fault on `host` by blocking all of its traffic
    /// (§VII-A: "a fail-stop fault is emulated using the sch_plug module, by
    /// blocking incoming and outgoing traffic").
    pub fn partition(&mut self, host: HostId) {
        self.partitioned.insert(host.0 as usize);
    }

    /// Heal a partition (reconnect the cable).
    pub fn heal(&mut self, host: HostId) {
        self.partitioned.remove(&(host.0 as usize));
    }

    /// Whether `host` is partitioned.
    pub fn is_partitioned(&self, host: HostId) -> bool {
        self.partitioned.contains(&(host.0 as usize))
    }

    /// Route packets between stacks until quiescent. Delivery is logical
    /// (timing is the driver's concern); the stats let drivers charge wire
    /// time.
    pub fn pump(&mut self) -> PumpStats {
        let mut stats = PumpStats::default();
        loop {
            let round = self.pump_once();
            if round == PumpStats::default() {
                break;
            }
            stats.absorb(round);
        }
        self.totals.absorb(stats);
        stats
    }

    fn pump_once(&mut self) -> PumpStats {
        let mut stats = PumpStats::default();
        let mut in_flight: Vec<(usize, Packet)> = Vec::new();

        for (idx, k) in self.kernels.iter_mut().enumerate() {
            let src_partitioned = self.partitioned.contains(&idx);
            for (ns, _) in k.stack_addrs() {
                let pkts = k.stack_mut(ns).expect("listed stack exists").take_ready();
                for p in pkts {
                    if src_partitioned {
                        stats.dropped += 1;
                    } else {
                        in_flight.push((idx, p));
                    }
                }
            }
        }

        for (_src, pkt) in in_flight {
            match self.routes.get(&pkt.dst.addr) {
                Some(&(host, ns)) if !self.partitioned.contains(&host) => {
                    stats.bytes += pkt.wire_bytes();
                    stats.delivered += 1;
                    self.kernels[host]
                        .stack_mut(ns)
                        .expect("routed stack exists")
                        .ingress(pkt);
                }
                _ => stats.dropped += 1,
            }
        }
        stats
    }

    /// Lifetime totals across all pumps.
    pub fn totals(&self) -> PumpStats {
        self.totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Endpoint;
    use crate::net::InputMode;

    /// Two hosts: a server container on host 0 (addr 10) and a client on
    /// host 1 (addr 20).
    fn two_hosts() -> (Cluster, HostId, NsId, HostId, NsId) {
        let mut cl = Cluster::new();
        let h0 = cl.add_host(Kernel::default());
        let h1 = cl.add_host(Kernel::default());
        let ns0 = cl.host_mut(h0).namespaces.create_set("server").net;
        let ns1 = cl.host_mut(h1).namespaces.create_set("client").net;
        cl.host_mut(h0).create_stack(ns0, 10, InputMode::Buffer);
        cl.host_mut(h1).create_stack(ns1, 20, InputMode::Buffer);
        cl.bind_addr(10, h0, ns0);
        cl.bind_addr(20, h1, ns1);
        (cl, h0, ns0, h1, ns1)
    }

    #[test]
    fn cross_host_echo() {
        let (mut cl, h0, ns0, h1, ns1) = two_hosts();
        // Server listens.
        let srv = cl.host_mut(h0).stack_mut(ns0).unwrap();
        let l = srv.socket();
        srv.bind(l, 80).unwrap();
        srv.listen(l).unwrap();
        // Client connects.
        let cli = cl.host_mut(h1).stack_mut(ns1).unwrap();
        let c = cli.socket();
        cli.connect(c, Endpoint::new(10, 80)).unwrap();
        let st = cl.pump();
        assert!(st.delivered >= 2, "SYN + SYN/ACK at least");

        let child = cl
            .host_mut(h0)
            .stack_mut(ns0)
            .unwrap()
            .accept(l)
            .unwrap()
            .unwrap();
        cl.host_mut(h1)
            .stack_mut(ns1)
            .unwrap()
            .send(c, b"hi")
            .unwrap();
        cl.pump();
        assert_eq!(
            cl.host_mut(h0)
                .stack_mut(ns0)
                .unwrap()
                .recv(child, 10)
                .unwrap(),
            b"hi"
        );
        cl.host_mut(h0)
            .stack_mut(ns0)
            .unwrap()
            .send(child, b"yo")
            .unwrap();
        cl.pump();
        assert_eq!(
            cl.host_mut(h1).stack_mut(ns1).unwrap().recv(c, 10).unwrap(),
            b"yo"
        );
    }

    #[test]
    fn partition_blocks_both_directions() {
        let (mut cl, h0, ns0, h1, ns1) = two_hosts();
        let srv = cl.host_mut(h0).stack_mut(ns0).unwrap();
        let l = srv.socket();
        srv.bind(l, 80).unwrap();
        srv.listen(l).unwrap();

        cl.partition(h0);
        let cli = cl.host_mut(h1).stack_mut(ns1).unwrap();
        let c = cli.socket();
        cli.connect(c, Endpoint::new(10, 80)).unwrap();
        let st = cl.pump();
        assert_eq!(st.delivered, 0);
        assert!(st.dropped >= 1);
        assert!(cl.is_partitioned(h0));

        // Healing lets a retry work (the SYN was lost; re-connect).
        cl.heal(h0);
        let cli = cl.host_mut(h1).stack_mut(ns1).unwrap();
        let c2 = cli.socket();
        cli.connect(c2, Endpoint::new(10, 80)).unwrap();
        let st = cl.pump();
        assert!(st.delivered >= 2);
    }

    #[test]
    fn rebind_addr_moves_traffic() {
        // The failover mechanism: addr 10 moves from host 0 to host 1.
        let (mut cl, _h0, _ns0, h1, ns1) = two_hosts();
        // A third stack on host 1 stands in for the restored container netns.
        let k1 = cl.host_mut(h1);
        let restored_ns = k1.namespaces.create_set("restored").net;
        k1.create_stack(restored_ns, 10, InputMode::Buffer);
        let s = k1.stack_mut(restored_ns).unwrap();
        let l = s.socket();
        s.bind(l, 80).unwrap();
        s.listen(l).unwrap();
        cl.bind_addr(10, h1, restored_ns); // gratuitous ARP

        let cli = cl.host_mut(h1).stack_mut(ns1).unwrap();
        let c = cli.socket();
        cli.connect(c, Endpoint::new(10, 80)).unwrap();
        cl.pump();
        assert!(
            cl.host_mut(h1)
                .stack_mut(restored_ns)
                .unwrap()
                .accept(l)
                .unwrap()
                .is_some(),
            "connection reached the restored location"
        );
        assert_eq!(cl.route_of(10), Some((h1, restored_ns)));
    }

    #[test]
    fn unroutable_packets_drop() {
        let (mut cl, _h0, _ns0, h1, ns1) = two_hosts();
        let cli = cl.host_mut(h1).stack_mut(ns1).unwrap();
        let c = cli.socket();
        cli.connect(c, Endpoint::new(99, 80)).unwrap();
        let st = cl.pump();
        assert_eq!(st.delivered, 0);
        assert_eq!(st.dropped, 1);
        assert!(cl.totals().dropped >= 1);
    }
}
