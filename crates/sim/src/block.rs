//! Logical block layer.
//!
//! The simulated "disk" stores file pages keyed by `(inode, page index)` —
//! a logical block store rather than raw sectors. This keeps the DRBD
//! replication protocol (async shipping, barriers, backup buffering, commit
//! on ack) fully faithful while avoiding irrelevant sector math. Every write
//! is appended to a write log that the DRBD primary drains.

use crate::ids::{DevId, Ino};
use crate::PAGE_SIZE;
use std::collections::HashMap;

/// One logical disk write (a page of file data hitting stable storage).
#[derive(Clone, PartialEq, Eq)]
pub struct DiskWrite {
    /// Target inode.
    pub ino: Ino,
    /// Page index within the file.
    pub page_idx: u64,
    /// Page contents.
    pub data: Box<[u8; PAGE_SIZE]>,
}

impl std::fmt::Debug for DiskWrite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskWrite")
            .field("ino", &self.ino)
            .field("page_idx", &self.page_idx)
            .finish()
    }
}

/// A block device: persistent page store + write log.
#[derive(Debug, Default)]
pub struct BlockDevice {
    /// Device id (assigned by the kernel).
    pub id: DevId,
    store: HashMap<(Ino, u64), Box<[u8; PAGE_SIZE]>>,
    write_log: Vec<DiskWrite>,
    writes_total: u64,
}

impl BlockDevice {
    /// New empty device.
    pub fn new(id: DevId) -> Self {
        BlockDevice {
            id,
            ..Default::default()
        }
    }

    /// Write one page to stable storage (logged for replication).
    pub fn write_page(&mut self, ino: Ino, page_idx: u64, data: Box<[u8; PAGE_SIZE]>) {
        self.store.insert((ino, page_idx), data.clone());
        self.write_log.push(DiskWrite {
            ino,
            page_idx,
            data,
        });
        self.writes_total += 1;
    }

    /// Apply a replicated write *without* logging it (backup-side commit —
    /// re-logging would echo the write back to the replication layer).
    pub fn apply_replicated(&mut self, w: &DiskWrite) {
        self.store.insert((w.ino, w.page_idx), w.data.clone());
        self.writes_total += 1;
    }

    /// Read one page; `None` if never written.
    pub fn read_page(&self, ino: Ino, page_idx: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.store.get(&(ino, page_idx)).map(|b| &**b)
    }

    /// Drain the write log (the DRBD primary ships these asynchronously).
    pub fn take_writes(&mut self) -> Vec<DiskWrite> {
        std::mem::take(&mut self.write_log)
    }

    /// Number of pending (not yet drained) logged writes.
    pub fn pending_writes(&self) -> usize {
        self.write_log.len()
    }

    /// Total writes ever applied to this device.
    pub fn writes_total(&self) -> u64 {
        self.writes_total
    }

    /// Number of distinct stored pages.
    pub fn stored_pages(&self) -> usize {
        self.store.len()
    }

    /// Snapshot the full device content as writes, sorted by `(ino, page)`
    /// for determinism. A freshly provisioned replication target has none of
    /// this device's history, so re-establishing redundancy needs a full
    /// resync (DRBD's initial bitmap-based sync) rather than the write log.
    pub fn full_sync_writes(&self) -> Vec<DiskWrite> {
        let mut keys: Vec<&(Ino, u64)> = self.store.keys().collect();
        keys.sort();
        keys.into_iter()
            .map(|&(ino, page_idx)| DiskWrite {
                ino,
                page_idx,
                data: self.store[&(ino, page_idx)].clone(),
            })
            .collect()
    }

    /// Content digest for equality checks in tests (order-independent).
    pub fn digest(&self) -> u64 {
        // FNV-1a over sorted (key, page) pairs — cheap and deterministic.
        let mut keys: Vec<&(Ino, u64)> = self.store.keys().collect();
        keys.sort();
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        };
        for k in keys {
            for b in k.0 .0.to_le_bytes() {
                mix(b);
            }
            for b in k.1.to_le_bytes() {
                mix(b);
            }
            for &b in self.store[k].iter() {
                mix(b);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(fill: u8) -> Box<[u8; PAGE_SIZE]> {
        Box::new([fill; PAGE_SIZE])
    }

    #[test]
    fn write_read_roundtrip() {
        let mut d = BlockDevice::new(DevId(1));
        assert!(d.read_page(Ino(1), 0).is_none());
        d.write_page(Ino(1), 0, page(7));
        assert_eq!(d.read_page(Ino(1), 0).unwrap()[0], 7);
        assert_eq!(d.stored_pages(), 1);
    }

    #[test]
    fn write_log_drains() {
        let mut d = BlockDevice::new(DevId(1));
        d.write_page(Ino(1), 0, page(1));
        d.write_page(Ino(1), 1, page(2));
        assert_eq!(d.pending_writes(), 2);
        let writes = d.take_writes();
        assert_eq!(writes.len(), 2);
        assert_eq!(writes[1].page_idx, 1);
        assert_eq!(d.pending_writes(), 0);
        assert_eq!(d.writes_total(), 2);
    }

    #[test]
    fn replicated_apply_does_not_log() {
        let mut primary = BlockDevice::new(DevId(1));
        let mut backup = BlockDevice::new(DevId(2));
        primary.write_page(Ino(9), 3, page(0xAA));
        for w in primary.take_writes() {
            backup.apply_replicated(&w);
        }
        assert_eq!(backup.pending_writes(), 0, "backup must not re-log");
        assert_eq!(backup.read_page(Ino(9), 3).unwrap()[0], 0xAA);
        assert_eq!(primary.digest(), backup.digest());
    }

    #[test]
    fn digest_detects_divergence() {
        let mut a = BlockDevice::new(DevId(1));
        let mut b = BlockDevice::new(DevId(2));
        a.write_page(Ino(1), 0, page(1));
        b.write_page(Ino(1), 0, page(2));
        assert_ne!(a.digest(), b.digest());
        b.write_page(Ino(1), 0, page(1));
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn full_sync_snapshot_rebuilds_fresh_device() {
        let mut src = BlockDevice::new(DevId(1));
        src.write_page(Ino(2), 1, page(2));
        src.write_page(Ino(1), 0, page(1));
        src.write_page(Ino(1), 5, page(5));
        let _ = src.take_writes(); // log already drained: snapshot must not rely on it
        let snap = src.full_sync_writes();
        assert_eq!(snap.len(), 3);
        let keys: Vec<(Ino, u64)> = snap.iter().map(|w| (w.ino, w.page_idx)).collect();
        assert_eq!(keys, vec![(Ino(1), 0), (Ino(1), 5), (Ino(2), 1)], "sorted");
        let mut fresh = BlockDevice::new(DevId(3));
        for w in &snap {
            fresh.apply_replicated(w);
        }
        assert_eq!(fresh.digest(), src.digest());
        assert_eq!(fresh.pending_writes(), 0, "resync must not re-log");
    }

    #[test]
    fn overwrite_keeps_single_stored_page() {
        let mut d = BlockDevice::new(DevId(1));
        d.write_page(Ino(1), 0, page(1));
        d.write_page(Ino(1), 0, page(2));
        assert_eq!(d.stored_pages(), 1);
        assert_eq!(d.read_page(Ino(1), 0).unwrap()[0], 2);
        assert_eq!(d.writes_total(), 2);
    }
}
