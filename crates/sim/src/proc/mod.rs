//! Processes, threads, and the cgroup freezer.

mod freezer;
mod process;
mod thread;

pub use freezer::{freeze, thaw, FreezeReport, FreezeStrategy};
pub use process::{FdEntry, Process};
pub use thread::{RegisterFile, SchedPolicy, Thread, ThreadRunState, Timer};
