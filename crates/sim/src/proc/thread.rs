//! Threads: register files, signal masks, timers, scheduling policy.
//!
//! These are exactly the per-thread state components the paper lists as
//! retrievable only "from within the processes being checkpointed" via the
//! parasite code (§II-B) or via ptrace — and whose retrieval cost scales the
//! stop time with thread count (§VII-C: 148 µs → 4 ms for 1 → 32 threads).

use serde::{Deserialize, Serialize};

use crate::ids::Tid;

/// A simulated x86-64 register file. Contents are real bytes that travel
/// through checkpoints; restore must reproduce them exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterFile {
    /// Instruction pointer.
    pub rip: u64,
    /// Stack pointer.
    pub rsp: u64,
    /// General-purpose registers.
    pub gpr: [u64; 14],
}

impl Default for RegisterFile {
    fn default() -> Self {
        RegisterFile {
            rip: 0x40_0000,
            rsp: 0x7fff_ffff_e000,
            gpr: [0; 14],
        }
    }
}

/// Scheduling policy (checkpointed per thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedPolicy {
    /// CFS default.
    #[default]
    Normal,
    /// Batch.
    Batch,
    /// Real-time FIFO with priority.
    Fifo(u8),
}

/// A POSIX-style interval timer (checkpointed per thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timer {
    /// Expiry, absolute virtual nanos.
    pub expires_at: u64,
    /// Interval for periodic timers (0 = one-shot).
    pub interval: u64,
}

/// What a thread is doing right now (freezer interacts with this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThreadRunState {
    /// Executing user code: freezes immediately on a virtual signal.
    #[default]
    User,
    /// Blocked in a system call: the virtual signal forces an early return
    /// first (§II-B), which costs `freeze_syscall_interrupt`.
    Syscall,
    /// Frozen by the freezer.
    Frozen,
}

/// One thread.
#[derive(Debug, Clone)]
pub struct Thread {
    /// Thread id.
    pub tid: Tid,
    /// Register file.
    pub regs: RegisterFile,
    /// Blocked-signal mask.
    pub sigmask: u64,
    /// Pending timers.
    pub timers: Vec<Timer>,
    /// Scheduling policy.
    pub sched: SchedPolicy,
    /// Current run state.
    pub run_state: ThreadRunState,
    /// Monotone scheduling-point counter (hybrid-replay interleaving axis).
    pub sched_seq: u64,
}

impl Thread {
    /// New runnable thread.
    pub fn new(tid: Tid) -> Self {
        Thread {
            tid,
            regs: RegisterFile::default(),
            sigmask: 0,
            timers: Vec::new(),
            sched: SchedPolicy::Normal,
            run_state: ThreadRunState::User,
            sched_seq: 0,
        }
    }

    /// Advance past a scheduling point, returning the new sequence number.
    pub fn note_sched(&mut self) -> u64 {
        self.sched_seq += 1;
        self.sched_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let t = Thread::new(Tid(1));
        assert_eq!(t.run_state, ThreadRunState::User);
        assert_eq!(t.sched, SchedPolicy::Normal);
        assert_eq!(t.regs.rip, 0x40_0000);
        assert!(t.timers.is_empty());
    }

    #[test]
    fn register_file_roundtrips_through_serde() {
        let mut r = RegisterFile::default();
        r.gpr[3] = 0xdead_beef;
        let json = serde_json::to_string(&r).unwrap();
        let back: RegisterFile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
