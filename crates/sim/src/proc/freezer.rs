//! The cgroup freezer: pausing a container with virtual signals (§II-B).
//!
//! CRIU freezes the container before dumping so the state cannot change
//! mid-checkpoint. Threads in user code pause immediately; threads inside a
//! system call are forced to return early, as if interrupted by a signal.
//! Stock CRIU sleeps a fixed 100 ms between signalling and re-checking;
//! NiLiCon polls continuously, getting the average wait under 1 ms even for
//! syscall-intensive workloads (§V-A).

use crate::costs::CostModel;
use crate::proc::thread::ThreadRunState;
use crate::proc::Process;
use crate::time::Nanos;

/// How the checkpointer waits for all threads to freeze (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FreezeStrategy {
    /// Stock CRIU: signal, sleep 100 ms, check.
    Stock,
    /// NiLiCon: signal, busy-poll thread states.
    #[default]
    BusyPoll,
}

/// Result of a freeze operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreezeReport {
    /// Virtual time the freeze took (part of the stop phase).
    pub elapsed: Nanos,
    /// Threads frozen.
    pub threads: usize,
    /// Threads that were inside a system call when signalled.
    pub in_syscall: usize,
}

/// Freeze every thread of `procs`, mutating run states. Time depends on the
/// strategy and on how many threads must be interrupted out of system calls.
pub fn freeze(
    procs: &mut [&mut Process],
    strategy: FreezeStrategy,
    costs: &CostModel,
) -> FreezeReport {
    let mut threads = 0usize;
    let mut in_syscall = 0usize;
    let mut slowest_thread: Nanos = 0;
    for p in procs.iter_mut() {
        for t in &mut p.threads {
            threads += 1;
            let wait = match t.run_state {
                ThreadRunState::User => 0,
                ThreadRunState::Syscall => {
                    in_syscall += 1;
                    costs.freeze_syscall_interrupt
                }
                ThreadRunState::Frozen => 0,
            };
            slowest_thread = slowest_thread.max(wait);
            t.run_state = ThreadRunState::Frozen;
        }
    }
    // Signals are delivered serially; the wait for quiescence is governed by
    // the slowest thread, then rounded up by the checking granularity.
    let signal_time = threads as Nanos * costs.freeze_signal_per_thread;
    let wait_time = match strategy {
        FreezeStrategy::Stock => costs.freeze_stock_sleep,
        FreezeStrategy::BusyPoll => {
            let polls = slowest_thread.div_ceil(costs.freeze_poll_interval.max(1)) + 1;
            polls * costs.freeze_poll_interval
        }
    };
    FreezeReport {
        elapsed: signal_time + wait_time,
        threads,
        in_syscall,
    }
}

/// Thaw every thread (returning them to user state), charging per-thread.
pub fn thaw(procs: &mut [&mut Process], costs: &CostModel) -> Nanos {
    let mut threads = 0;
    for p in procs.iter_mut() {
        for t in &mut p.threads {
            if t.run_state == ThreadRunState::Frozen {
                t.run_state = ThreadRunState::User;
            }
            threads += 1;
        }
    }
    threads as Nanos * costs.thaw_per_thread
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{AsId, CgroupId, NsId, Pid, Tid};
    use crate::time::MILLISECOND;

    fn procs(n_threads: usize, in_syscall: usize) -> Process {
        let mut p = Process::new(Pid(1), Pid(0), AsId(1), CgroupId(1), NsId(1), "/init");
        for i in 1..n_threads {
            p.spawn_thread(Tid(1 + i as u32));
        }
        for t in p.threads.iter_mut().take(in_syscall) {
            t.run_state = ThreadRunState::Syscall;
        }
        p
    }

    #[test]
    fn busy_poll_is_fast_even_with_syscalls() {
        let costs = CostModel::default();
        let mut p = procs(4, 2);
        let r = freeze(&mut [&mut p], FreezeStrategy::BusyPoll, &costs);
        assert_eq!(r.threads, 4);
        assert_eq!(r.in_syscall, 2);
        assert!(
            r.elapsed < MILLISECOND,
            "§V-A: busy-poll waits <1ms, got {}",
            r.elapsed
        );
        assert!(p
            .threads
            .iter()
            .all(|t| t.run_state == ThreadRunState::Frozen));
    }

    #[test]
    fn stock_sleep_dominates() {
        let costs = CostModel::default();
        let mut p = procs(4, 0);
        let r = freeze(&mut [&mut p], FreezeStrategy::Stock, &costs);
        assert!(
            r.elapsed >= 100 * MILLISECOND,
            "stock CRIU sleeps 100ms (§V-A)"
        );
    }

    #[test]
    fn strategy_gap_matches_paper_shape() {
        // The optimized freeze must be at least two orders of magnitude
        // cheaper — this is a component of Table I's first optimization row.
        let costs = CostModel::default();
        let mut a = procs(8, 4);
        let mut b = procs(8, 4);
        let stock = freeze(&mut [&mut a], FreezeStrategy::Stock, &costs);
        let poll = freeze(&mut [&mut b], FreezeStrategy::BusyPoll, &costs);
        assert!(stock.elapsed > 100 * poll.elapsed);
    }

    #[test]
    fn thaw_restores_user_state() {
        let costs = CostModel::default();
        let mut p = procs(3, 1);
        freeze(&mut [&mut p], FreezeStrategy::BusyPoll, &costs);
        let t = thaw(&mut [&mut p], &costs);
        assert_eq!(t, 3 * costs.thaw_per_thread);
        assert!(p
            .threads
            .iter()
            .all(|t| t.run_state == ThreadRunState::User));
    }

    #[test]
    fn freeze_is_idempotent() {
        let costs = CostModel::default();
        let mut p = procs(2, 0);
        freeze(&mut [&mut p], FreezeStrategy::BusyPoll, &costs);
        let r2 = freeze(&mut [&mut p], FreezeStrategy::BusyPoll, &costs);
        assert_eq!(
            r2.in_syscall, 0,
            "already-frozen threads are not re-interrupted"
        );
    }
}
