//! Processes: fd tables, thread groups, namespace/cgroup membership.

use crate::error::{SimError, SimResult};
use crate::ids::{AsId, CgroupId, Fd, Ino, NsId, Pid, SockId};
use crate::proc::thread::Thread;
use std::collections::BTreeMap;

/// One file-descriptor table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdEntry {
    /// Open regular file with a cursor.
    File {
        /// Backing inode.
        ino: Ino,
        /// Current offset.
        offset: u64,
        /// Open flags (O_APPEND etc. as raw bits; opaque to the simulation).
        flags: u32,
    },
    /// A socket.
    Socket(SockId),
}

/// A process: one or more threads sharing an address space and fd table.
#[derive(Debug, Clone)]
pub struct Process {
    /// Process id (== tid of the thread-group leader).
    pub pid: Pid,
    /// Parent pid (0 for the container init).
    pub ppid: Pid,
    /// Shared address space.
    pub mm: AsId,
    /// Threads (leader first).
    pub threads: Vec<Thread>,
    /// File-descriptor table.
    pub fds: BTreeMap<Fd, FdEntry>,
    /// Owning cgroup.
    pub cgroup: CgroupId,
    /// Network namespace.
    pub netns: NsId,
    /// Executable path (for image metadata).
    pub exe: String,
    next_fd: i32,
}

impl Process {
    /// New single-threaded process.
    pub fn new(pid: Pid, ppid: Pid, mm: AsId, cgroup: CgroupId, netns: NsId, exe: &str) -> Self {
        Process {
            pid,
            ppid,
            mm,
            threads: vec![Thread::new(crate::ids::Tid(pid.0))],
            fds: BTreeMap::new(),
            cgroup,
            netns,
            exe: exe.to_string(),
            next_fd: 3, // 0/1/2 notionally reserved for stdio
        }
    }

    /// Install an fd entry, returning the fd number.
    pub fn install_fd(&mut self, entry: FdEntry) -> Fd {
        let fd = Fd(self.next_fd);
        self.next_fd += 1;
        self.fds.insert(fd, entry);
        fd
    }

    /// Install an fd entry at a *specific* number (restore path).
    pub fn install_fd_at(&mut self, fd: Fd, entry: FdEntry) {
        self.next_fd = self.next_fd.max(fd.0 + 1);
        self.fds.insert(fd, entry);
    }

    /// Fd lookup.
    pub fn fd(&self, fd: Fd) -> SimResult<&FdEntry> {
        self.fds.get(&fd).ok_or(SimError::BadFd(self.pid, fd))
    }

    /// Mutable fd lookup.
    pub fn fd_mut(&mut self, fd: Fd) -> SimResult<&mut FdEntry> {
        let pid = self.pid;
        self.fds.get_mut(&fd).ok_or(SimError::BadFd(pid, fd))
    }

    /// Close an fd.
    pub fn close_fd(&mut self, fd: Fd) -> SimResult<FdEntry> {
        self.fds.remove(&fd).ok_or(SimError::BadFd(self.pid, fd))
    }

    /// Number of open fds.
    pub fn fd_count(&self) -> usize {
        self.fds.len()
    }

    /// Add a thread; returns its tid.
    pub fn spawn_thread(&mut self, tid: crate::ids::Tid) -> crate::ids::Tid {
        self.threads.push(Thread::new(tid));
        tid
    }

    /// Thread count.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Tid;

    fn proc() -> Process {
        Process::new(Pid(100), Pid(1), AsId(1), CgroupId(1), NsId(1), "/bin/app")
    }

    #[test]
    fn fd_lifecycle() {
        let mut p = proc();
        let fd = p.install_fd(FdEntry::File {
            ino: Ino(4),
            offset: 0,
            flags: 0,
        });
        assert_eq!(fd, Fd(3));
        assert!(p.fd(fd).is_ok());
        if let FdEntry::File { offset, .. } = p.fd_mut(fd).unwrap() {
            *offset = 42;
        }
        assert!(matches!(
            p.fd(fd).unwrap(),
            FdEntry::File { offset: 42, .. }
        ));
        p.close_fd(fd).unwrap();
        assert!(matches!(p.fd(fd), Err(SimError::BadFd(_, _))));
    }

    #[test]
    fn install_fd_at_respects_numbering() {
        let mut p = proc();
        p.install_fd_at(Fd(7), FdEntry::Socket(SockId(1)));
        let next = p.install_fd(FdEntry::Socket(SockId(2)));
        assert_eq!(next, Fd(8), "allocation resumes past restored fds");
    }

    #[test]
    fn threads() {
        let mut p = proc();
        assert_eq!(p.thread_count(), 1);
        assert_eq!(p.threads[0].tid, Tid(100), "leader tid == pid");
        p.spawn_thread(Tid(101));
        assert_eq!(p.thread_count(), 2);
    }
}
