//! Simulated networking: TCP with repair mode, per-namespace stacks, and the
//! `sch_plug`-style qdisc NiLiCon uses for output buffering and input
//! blocking.
//!
//! The transport is simplified — the simulated wire is reliable and in-order
//! during normal operation — but the *replication-relevant* machinery is
//! faithful: sequence/acknowledgment numbers, unacknowledged send queues,
//! unread receive queues, socket repair mode (get/set of all of the above),
//! RST generation for orphaned packets, retransmission timeouts (1 s default
//! vs the paper's 200 ms repair-mode minimum), and packet loss at failover.

mod chaos;
mod qdisc;
mod stack;
mod tcp;

pub use chaos::{ChaosConfig, ChaosLink, ChaosSchedule, FaultKind, FaultWindow, LinkDir};
pub use qdisc::{InputGate, InputMode, PlugQdisc};
pub use stack::{NetStack, SocketQueueStats};
pub use tcp::{Packet, RepairState, TcpFlags, TcpSocket, TcpState, RTO_MSS};
