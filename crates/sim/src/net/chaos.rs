//! Adversarial fault injection on the replication/heartbeat link.
//!
//! The paper's evaluation (§VII) only ever fail-stops the primary; the
//! failure modes that actually break primary-backup replication are link
//! partitions, asymmetric loss, and delay-induced detector false positives.
//! This module models those faults on the *replication link* — the dedicated
//! interface carrying checkpoint transfers (primary → backup), epoch acks
//! (backup → primary), and heartbeats — as a schedule of timed fault windows
//! plus a per-direction [`ChaosLink`] message channel that applies them.
//!
//! Semantics, chosen to mirror what the real interconnect does:
//!
//! * **Partition** — bidirectional. Messages sent while the partition is open
//!   are *held* (switch-buffer / retransmission-queue emulation, the same
//!   `sch_plug` idea as [`super::PlugQdisc`]) and flush in FIFO order when
//!   the window closes. Nothing is ever delivered across an open partition.
//! * **Asymmetric loss** — directional. `drop_nth == 1` is a blackout of that
//!   direction; `drop_nth == n > 1` drops every n-th message (heartbeat loss
//!   below the detector threshold, dropped acks).
//! * **Delay spike** — adds `extra` one-way latency in both directions while
//!   active (congestion, a misbehaving switch).
//! * **Reorder** — adjacent live sends within the window swap delivery
//!   order (multipath reordering).
//!
//! Outside reorder windows delivery is FIFO: each message's delivery time is
//! clamped to be no earlier than the previously scheduled one.

use crate::time::Nanos;

/// Direction over the two-endpoint replication link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDir {
    /// Primary → backup: checkpoint transfer and heartbeats.
    AtoB,
    /// Backup → primary: epoch acknowledgments.
    BtoA,
}

/// One kind of injected link fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Bidirectional partition: hold while open, FIFO flush at heal.
    Partition,
    /// Directional loss: drop every `drop_nth`-th message sent in `dir`
    /// (`drop_nth == 1` blacks the direction out entirely).
    AsymLoss {
        /// Affected direction.
        dir: LinkDir,
        /// Drop period (1 = every message).
        drop_nth: u64,
    },
    /// Extra one-way latency in both directions while active.
    DelaySpike {
        /// Added one-way delay.
        extra: Nanos,
    },
    /// Adjacent sends within the window swap delivery order.
    Reorder,
}

/// A fault active over the half-open virtual-time window `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// Window start (inclusive).
    pub from: Nanos,
    /// Window end (exclusive) — the heal instant for partitions.
    pub until: Nanos,
    /// The fault in effect.
    pub kind: FaultKind,
}

impl FaultWindow {
    /// Whether `t` falls inside the window.
    pub fn covers(&self, t: Nanos) -> bool {
        self.from <= t && t < self.until
    }
}

/// A timed schedule of fault windows — the injectable chaos configuration.
///
/// Windows may overlap; queries combine all windows active at `t`.
#[derive(Debug, Clone, Default)]
pub struct ChaosSchedule {
    /// The fault windows, in no particular order.
    pub windows: Vec<FaultWindow>,
}

impl ChaosSchedule {
    /// Builder: append a window.
    pub fn window(mut self, from: Nanos, until: Nanos, kind: FaultKind) -> Self {
        assert!(from < until, "empty fault window");
        self.windows.push(FaultWindow { from, until, kind });
        self
    }

    /// Whether any partition window covers `t`.
    pub fn partitioned(&self, t: Nanos) -> bool {
        self.windows
            .iter()
            .any(|w| w.kind == FaultKind::Partition && w.covers(t))
    }

    /// Earliest time `>= t` not covered by any partition window (the instant
    /// a message sent at `t` can depart). Walks chained windows to a
    /// fixpoint, so back-to-back partitions compose.
    pub fn partition_release(&self, t: Nanos) -> Nanos {
        let mut t = t;
        loop {
            let next = self
                .windows
                .iter()
                .filter(|w| w.kind == FaultKind::Partition && w.covers(t))
                .map(|w| w.until)
                .max();
            match next {
                Some(until) => t = until,
                None => return t,
            }
        }
    }

    /// Whether direction `dir` is fully cut at `t`: partitioned, or blacked
    /// out by an `AsymLoss { drop_nth: 1 }` window.
    pub fn blocked(&self, t: Nanos, dir: LinkDir) -> bool {
        self.partitioned(t)
            || self.windows.iter().any(|w| {
                w.covers(t) && w.kind == FaultKind::AsymLoss { dir, drop_nth: 1 }
            })
    }

    /// Partial-loss period active in `dir` at `t` (`drop_nth >= 2`), if any.
    pub fn loss_period(&self, t: Nanos, dir: LinkDir) -> Option<u64> {
        self.windows.iter().find_map(|w| match w.kind {
            FaultKind::AsymLoss { dir: d, drop_nth } if d == dir && drop_nth >= 2 && w.covers(t) => {
                Some(drop_nth)
            }
            _ => None,
        })
    }

    /// Sum of extra one-way delay active at `t`.
    pub fn delay_extra(&self, t: Nanos) -> Nanos {
        self.windows
            .iter()
            .filter_map(|w| match w.kind {
                FaultKind::DelaySpike { extra } if w.covers(t) => Some(extra),
                _ => None,
            })
            .sum()
    }

    /// Whether a reorder window covers `t`.
    pub fn reordering(&self, t: Nanos) -> bool {
        self.windows
            .iter()
            .any(|w| w.kind == FaultKind::Reorder && w.covers(t))
    }

    /// The latest `until` across all windows — after this the link is clean.
    pub fn horizon(&self) -> Nanos {
        self.windows.iter().map(|w| w.until).max().unwrap_or(0)
    }
}

/// Chaos knobs for one replicated run: the fault schedule plus the base
/// one-way latency of the (otherwise clean) replication link.
///
/// A `link_latency` of 0 means "use the cost model's replication-link
/// latency" — the harness substitutes it at [`set_chaos`] time.
///
/// [`set_chaos`]: ../../nilicon/harness/struct.RunHarness.html
#[derive(Debug, Clone, Default)]
pub struct ChaosConfig {
    /// The fault schedule.
    pub schedule: ChaosSchedule,
    /// Base one-way link latency (0 = cost-model default).
    pub link_latency: Nanos,
}

impl ChaosConfig {
    /// A config with the given schedule and the default link latency.
    pub fn new(schedule: ChaosSchedule) -> Self {
        ChaosConfig {
            schedule,
            link_latency: 0,
        }
    }
}

/// One direction of the replication link under a chaos schedule.
///
/// `send(t, msg)` stamps the message with a delivery time derived from the
/// schedule (held across partitions, dropped by loss, stretched by spikes,
/// swapped by reorder); `poll(now)` drains everything due by `now` in
/// delivery order. Both endpoints share virtual time, so the link is just a
/// delay line with faults.
#[derive(Debug)]
pub struct ChaosLink<T> {
    dir: LinkDir,
    latency: Nanos,
    schedule: ChaosSchedule,
    sent: u64,
    dropped: u64,
    delivered: u64,
    /// In flight: `(delivery_time, seq, msg)` — seq breaks ties stably.
    in_flight: Vec<(Nanos, u64, T)>,
    /// FIFO clamp: no later message schedules before this.
    last_sched: Nanos,
    /// Reorder buddy awaiting its swap partner: `(natural_delivery, msg)`.
    swap_pending: Option<(Nanos, T)>,
}

impl<T> ChaosLink<T> {
    /// A link direction with base one-way `latency` under `schedule`.
    pub fn new(dir: LinkDir, latency: Nanos, schedule: ChaosSchedule) -> Self {
        ChaosLink {
            dir,
            latency,
            schedule,
            sent: 0,
            dropped: 0,
            delivered: 0,
            in_flight: Vec::new(),
            last_sched: 0,
            swap_pending: None,
        }
    }

    fn enqueue(&mut self, delivery: Nanos, msg: T) {
        let seq = self.sent;
        self.in_flight.push((delivery, seq, msg));
    }

    /// Send `msg` at virtual time `t`.
    pub fn send(&mut self, t: Nanos, msg: T) {
        self.sent += 1;
        // Directional blackout: silently gone.
        if !self.schedule.partitioned(t)
            && self.schedule.blocked(t, self.dir)
        {
            self.dropped += 1;
            return;
        }
        // Partial loss: drop every n-th message while the window is active.
        if let Some(n) = self.schedule.loss_period(t, self.dir) {
            if self.sent.is_multiple_of(n) {
                self.dropped += 1;
                return;
            }
        }
        // Partition: the message departs only at heal, then travels the
        // (possibly still delayed) link.
        let depart = self.schedule.partition_release(t);
        let natural = depart + self.latency + self.schedule.delay_extra(depart);

        if depart == t && self.schedule.reordering(t) {
            // Live traffic inside a reorder window: pair up adjacent sends
            // and swap their delivery order.
            match self.swap_pending.take() {
                None => {
                    self.swap_pending = Some((natural, msg));
                    return;
                }
                Some((d0, m0)) => {
                    let first = natural.min(d0);
                    let second = natural.max(d0).max(first + 1);
                    self.enqueue(first, msg); // later send delivers first
                    self.enqueue(second, m0);
                    self.last_sched = self.last_sched.max(second);
                    return;
                }
            }
        }
        self.flush_swap();
        // FIFO outside reorder windows: never overtake an earlier message.
        let delivery = natural.max(self.last_sched);
        self.last_sched = delivery;
        self.enqueue(delivery, msg);
    }

    fn flush_swap(&mut self) {
        if let Some((d, m)) = self.swap_pending.take() {
            let delivery = d.max(self.last_sched);
            self.last_sched = delivery;
            let seq = self.sent;
            self.in_flight.push((delivery, seq, m));
        }
    }

    /// Drain every message due by `now`, in `(delivery_time, send order)`
    /// order. Returns `(delivery_time, msg)` pairs.
    pub fn poll(&mut self, now: Nanos) -> Vec<(Nanos, T)> {
        // An unpaired reorder buddy whose window has closed travels normally.
        if self.swap_pending.is_some() && !self.schedule.reordering(now) {
            self.flush_swap();
        }
        let mut due: Vec<(Nanos, u64, T)> = Vec::new();
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].0 <= now {
                due.push(self.in_flight.swap_remove(i));
            } else {
                i += 1;
            }
        }
        due.sort_by_key(|&(d, seq, _)| (d, seq));
        self.delivered += due.len() as u64;
        due.into_iter().map(|(d, _, m)| (d, m)).collect()
    }

    /// Lifetime counters `(sent, delivered, dropped)`.
    pub fn totals(&self) -> (u64, u64, u64) {
        (self.sent, self.delivered, self.dropped)
    }

    /// Messages currently in flight or held by a partition.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len() + usize::from(self.swap_pending.is_some())
    }

    /// The schedule this link runs under.
    pub fn schedule(&self) -> &ChaosSchedule {
        &self.schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::MILLISECOND;

    const MS: Nanos = MILLISECOND;
    const LAT: Nanos = 15_000; // 15 µs base latency

    fn link(schedule: ChaosSchedule) -> ChaosLink<u64> {
        ChaosLink::new(LinkDir::AtoB, LAT, schedule)
    }

    #[test]
    fn clean_link_is_a_fifo_delay_line() {
        let mut l = link(ChaosSchedule::default());
        l.send(0, 1);
        l.send(10 * MS, 2);
        assert!(l.poll(LAT - 1).is_empty());
        let got = l.poll(20 * MS);
        assert_eq!(got, vec![(LAT, 1), (10 * MS + LAT, 2)]);
        assert_eq!(l.totals(), (2, 2, 0));
    }

    #[test]
    fn partition_holds_and_heals_in_fifo_order() {
        let sched = ChaosSchedule::default().window(5 * MS, 20 * MS, FaultKind::Partition);
        let mut l = link(sched);
        l.send(6 * MS, 1);
        l.send(12 * MS, 2);
        // Nothing crosses while the partition is open.
        assert!(l.poll(19 * MS).is_empty());
        assert_eq!(l.in_flight(), 2);
        // Heal: both flush, FIFO, delivered at heal + latency.
        let got = l.poll(21 * MS);
        assert_eq!(got, vec![(20 * MS + LAT, 1), (20 * MS + LAT, 2)]);
    }

    #[test]
    fn back_to_back_partitions_compose() {
        let sched = ChaosSchedule::default()
            .window(5 * MS, 10 * MS, FaultKind::Partition)
            .window(10 * MS, 30 * MS, FaultKind::Partition);
        let mut l = link(sched);
        l.send(6 * MS, 1);
        assert!(l.poll(29 * MS).is_empty());
        assert_eq!(l.poll(31 * MS), vec![(30 * MS + LAT, 1)]);
    }

    #[test]
    fn asym_blackout_drops_one_direction_only() {
        let sched = ChaosSchedule::default().window(
            0,
            10 * MS,
            FaultKind::AsymLoss {
                dir: LinkDir::BtoA,
                drop_nth: 1,
            },
        );
        let mut fwd = ChaosLink::new(LinkDir::AtoB, LAT, sched.clone());
        let mut rev = ChaosLink::new(LinkDir::BtoA, LAT, sched);
        fwd.send(MS, 1);
        rev.send(MS, 1);
        assert_eq!(fwd.poll(10 * MS).len(), 1, "forward direction unaffected");
        assert!(rev.poll(10 * MS).is_empty(), "reverse blacked out");
        assert_eq!(rev.totals(), (1, 0, 1));
    }

    #[test]
    fn partial_loss_drops_every_nth() {
        let sched = ChaosSchedule::default().window(
            0,
            100 * MS,
            FaultKind::AsymLoss {
                dir: LinkDir::AtoB,
                drop_nth: 2,
            },
        );
        let mut l = link(sched);
        for i in 1..=6u64 {
            l.send(i * MS, i);
        }
        let got: Vec<u64> = l.poll(200 * MS).into_iter().map(|(_, m)| m).collect();
        assert_eq!(got, vec![1, 3, 5]);
        assert_eq!(l.totals(), (6, 3, 3));
    }

    #[test]
    fn delay_spike_stretches_latency() {
        let sched =
            ChaosSchedule::default().window(5 * MS, 10 * MS, FaultKind::DelaySpike { extra: 3 * MS });
        let mut l = link(sched);
        l.send(MS, 1); // before the spike: base latency
        l.send(6 * MS, 2); // inside: +3 ms
        let got = l.poll(20 * MS);
        assert_eq!(got, vec![(MS + LAT, 1), (6 * MS + LAT + 3 * MS, 2)]);
    }

    #[test]
    fn reorder_swaps_adjacent_sends() {
        let sched = ChaosSchedule::default().window(0, 10 * MS, FaultKind::Reorder);
        let mut l = link(sched);
        l.send(MS, 1);
        l.send(2 * MS, 2);
        let got: Vec<u64> = l.poll(20 * MS).into_iter().map(|(_, m)| m).collect();
        assert_eq!(got, vec![2, 1], "adjacent pair delivered swapped");
    }

    #[test]
    fn unpaired_reorder_buddy_flushes_after_window() {
        let sched = ChaosSchedule::default().window(0, 10 * MS, FaultKind::Reorder);
        let mut l = link(sched);
        l.send(MS, 1);
        let got: Vec<u64> = l.poll(20 * MS).into_iter().map(|(_, m)| m).collect();
        assert_eq!(got, vec![1], "lone message still arrives");
    }

    #[test]
    fn schedule_queries_compose() {
        let sched = ChaosSchedule::default()
            .window(0, 10 * MS, FaultKind::Partition)
            .window(5 * MS, 20 * MS, FaultKind::DelaySpike { extra: MS });
        assert!(sched.partitioned(0));
        assert!(!sched.partitioned(10 * MS), "until is exclusive");
        assert!(sched.blocked(9 * MS, LinkDir::AtoB));
        assert!(sched.blocked(9 * MS, LinkDir::BtoA));
        assert!(!sched.blocked(10 * MS, LinkDir::AtoB));
        assert_eq!(sched.delay_extra(15 * MS), MS);
        assert_eq!(sched.partition_release(3 * MS), 10 * MS);
        assert_eq!(sched.horizon(), 20 * MS);
    }
}
