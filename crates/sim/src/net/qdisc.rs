//! Output buffering and input blocking at the container's network interface.
//!
//! Output: Remus-style output commit (§II-A) — packets generated during epoch
//! `k` are held in the plug qdisc and released only after the backup
//! acknowledges epoch `k`'s state.
//!
//! Input: during checkpointing the container is paused but its in-kernel
//! socket state could still be mutated by RX traffic (§III), so input must be
//! blocked. Stock CRIU drops packets with firewall rules (7 ms per epoch to
//! install/remove, and a dropped SYN costs seconds of retry); NiLiCon buffers
//! them in a kernel module and releases on unblock (43 µs) — §V-C.

use super::tcp::Packet;
use std::collections::VecDeque;

/// How blocked input packets are treated (§V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InputMode {
    /// NiLiCon: buffer during the block window, deliver on unblock.
    #[default]
    Buffer,
    /// Stock CRIU: firewall drop. Dropped SYNs incur connection-establishment
    /// retry penalties; dropped data is recovered by client retransmission.
    Drop,
}

/// The egress plug qdisc: buffers outgoing packets per epoch.
#[derive(Debug, Default)]
pub struct PlugQdisc {
    buf: VecDeque<Packet>,
    released_total: u64,
    buffered_total: u64,
}

impl PlugQdisc {
    /// New (empty, plugged) qdisc.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue an outgoing packet (always buffered; release is explicit).
    pub fn enqueue(&mut self, pkt: Packet) {
        self.buffered_total += 1;
        self.buf.push_back(pkt);
    }

    /// Release everything buffered so far (epoch commit). Returns packets in
    /// FIFO order.
    pub fn release(&mut self) -> Vec<Packet> {
        self.released_total += self.buf.len() as u64;
        self.buf.drain(..).collect()
    }

    /// Discard everything buffered (primary failed before commit — these
    /// outputs were never observable and must not escape).
    pub fn discard(&mut self) -> usize {
        let n = self.buf.len();
        self.buf.clear();
        n
    }

    /// Packets currently held.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Lifetime counters `(buffered, released)`.
    pub fn totals(&self) -> (u64, u64) {
        (self.buffered_total, self.released_total)
    }
}

/// The ingress gate: blocks input during checkpointing and recovery.
#[derive(Debug, Default)]
pub struct InputGate {
    mode: InputMode,
    blocked: bool,
    buf: VecDeque<Packet>,
    dropped_total: u64,
    dropped_syns_total: u64,
}

impl InputGate {
    /// New unblocked gate with the given mode.
    pub fn new(mode: InputMode) -> Self {
        InputGate {
            mode,
            ..Default::default()
        }
    }

    /// Current mode.
    pub fn mode(&self) -> InputMode {
        self.mode
    }

    /// Switch blocking mode (the §V-C optimization toggle). Only valid while
    /// unblocked — switching mid-window would lose buffered packets.
    pub fn set_mode(&mut self, mode: InputMode) {
        assert!(!self.blocked, "cannot switch input mode while blocked");
        self.mode = mode;
    }

    /// Begin blocking input.
    pub fn block(&mut self) {
        self.blocked = true;
    }

    /// Whether input is currently blocked.
    pub fn is_blocked(&self) -> bool {
        self.blocked
    }

    /// Offer an incoming packet. Returns `Some(pkt)` if it should be
    /// delivered to the stack now, `None` if held or dropped.
    pub fn offer(&mut self, pkt: Packet) -> Option<Packet> {
        if !self.blocked {
            return Some(pkt);
        }
        match self.mode {
            InputMode::Buffer => {
                self.buf.push_back(pkt);
                None
            }
            InputMode::Drop => {
                self.dropped_total += 1;
                if pkt.flags.syn {
                    self.dropped_syns_total += 1;
                }
                None
            }
        }
    }

    /// Stop blocking; returns any buffered packets for delivery (Buffer mode)
    /// in arrival order.
    pub fn unblock(&mut self) -> Vec<Packet> {
        self.blocked = false;
        self.buf.drain(..).collect()
    }

    /// Packets currently held (Buffer mode).
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Lifetime counts `(dropped, dropped_syns)` — Drop mode only.
    pub fn drop_totals(&self) -> (u64, u64) {
        (self.dropped_total, self.dropped_syns_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Endpoint;
    use crate::net::tcp::TcpFlags;
    use bytes::Bytes;

    fn pkt(flags: TcpFlags) -> Packet {
        Packet {
            src: Endpoint::new(1, 1),
            dst: Endpoint::new(2, 2),
            seq: 0,
            ack: 0,
            flags,
            payload: Bytes::from_static(b"x"),
        }
    }

    #[test]
    fn plug_buffers_until_release() {
        let mut q = PlugQdisc::new();
        q.enqueue(pkt(TcpFlags::DATA));
        q.enqueue(pkt(TcpFlags::DATA));
        assert_eq!(q.pending(), 2);
        let out = q.release();
        assert_eq!(out.len(), 2);
        assert_eq!(q.pending(), 0);
        assert_eq!(q.totals(), (2, 2));
    }

    #[test]
    fn plug_discard_on_failure() {
        let mut q = PlugQdisc::new();
        q.enqueue(pkt(TcpFlags::DATA));
        assert_eq!(q.discard(), 1);
        assert!(q.release().is_empty(), "discarded output never escapes");
        assert_eq!(q.totals(), (1, 0));
    }

    #[test]
    fn gate_passes_when_unblocked() {
        let mut g = InputGate::new(InputMode::Buffer);
        assert!(g.offer(pkt(TcpFlags::DATA)).is_some());
    }

    #[test]
    fn gate_buffer_mode_holds_and_releases_in_order() {
        let mut g = InputGate::new(InputMode::Buffer);
        g.block();
        assert!(g.offer(pkt(TcpFlags::SYN)).is_none());
        assert!(g.offer(pkt(TcpFlags::DATA)).is_none());
        assert_eq!(g.pending(), 2);
        let out = g.unblock();
        assert_eq!(out.len(), 2);
        assert!(out[0].flags.syn, "FIFO order preserved");
        assert!(!g.is_blocked());
        assert_eq!(g.drop_totals(), (0, 0));
    }

    #[test]
    fn gate_drop_mode_counts_syns() {
        let mut g = InputGate::new(InputMode::Drop);
        g.block();
        assert!(g.offer(pkt(TcpFlags::SYN)).is_none());
        assert!(g.offer(pkt(TcpFlags::DATA)).is_none());
        assert!(g.unblock().is_empty(), "dropped packets are gone");
        assert_eq!(g.drop_totals(), (2, 1));
    }
}
