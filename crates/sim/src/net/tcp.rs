//! TCP sockets with repair mode.

use crate::error::{SimError, SimResult};
use crate::ids::{Endpoint, SockId};
use crate::time::Nanos;
use bytes::Bytes;
use std::collections::VecDeque;

/// Maximum payload of one RTO retransmission segment (Ethernet MSS). A
/// restored connection with more than one MSS of unacknowledged bytes needs
/// multiple segments to cover its window — callers drain it by walking
/// [`TcpSocket::retransmit_at`] offsets until it returns `None`.
pub const RTO_MSS: usize = 1460;

/// TCP header flags (only those the simulation uses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpFlags {
    /// Synchronize (connection setup).
    pub syn: bool,
    /// Acknowledgment field valid.
    pub ack: bool,
    /// Finish (orderly close).
    pub fin: bool,
    /// Reset (abort). Receiving RST breaks the connection — the §III failure
    /// mode NiLiCon's input blocking prevents during recovery.
    pub rst: bool,
}

impl TcpFlags {
    /// Plain data segment.
    pub const DATA: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
    };
    /// SYN.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
    };
    /// SYN+ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
    };
    /// Bare ACK.
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
    };
    /// RST.
    pub const RST: TcpFlags = TcpFlags {
        syn: false,
        ack: false,
        fin: false,
        rst: true,
    };
}

/// A TCP segment on the simulated wire.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Source endpoint.
    pub src: Endpoint,
    /// Destination endpoint.
    pub dst: Endpoint,
    /// Sequence number of the first payload byte.
    pub seq: u32,
    /// Acknowledgment number (next expected byte), valid if `flags.ack`.
    pub ack: u32,
    /// Flags.
    pub flags: TcpFlags,
    /// Payload bytes.
    pub payload: Bytes,
}

impl Packet {
    /// Total on-wire size: a nominal 54-byte header plus payload. Used for
    /// link-time accounting.
    pub fn wire_bytes(&self) -> u64 {
        54 + self.payload.len() as u64
    }
}

/// Connection state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// Not connected.
    Closed,
    /// Passive open.
    Listen,
    /// Active open sent, awaiting SYN+ACK.
    SynSent,
    /// Data transfer.
    Established,
    /// Connection aborted by an incoming RST — observable as a broken
    /// connection by the application (the validation criterion of §VII-A).
    Reset,
}

impl TcpState {
    /// Short name for error messages.
    pub fn name(self) -> &'static str {
        match self {
            TcpState::Closed => "Closed",
            TcpState::Listen => "Listen",
            TcpState::SynSent => "SynSent",
            TcpState::Established => "Established",
            TcpState::Reset => "Reset",
        }
    }
}

/// Everything socket repair mode exposes (§II-B): sequence numbers plus the
/// write queue (transmitted but not acknowledged) and read queue (received
/// but not read by the process).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairState {
    /// Local endpoint.
    pub local: Endpoint,
    /// Remote endpoint.
    pub remote: Endpoint,
    /// Next sequence number to send.
    pub snd_nxt: u32,
    /// Oldest unacknowledged sequence number.
    pub snd_una: u32,
    /// Next expected receive sequence number.
    pub rcv_nxt: u32,
    /// Write-queue contents (bytes `snd_una..snd_nxt`).
    pub write_queue: Vec<u8>,
    /// Read-queue contents (received, not yet read by the application).
    pub read_queue: Vec<u8>,
}

impl RepairState {
    /// Bytes this state occupies in a checkpoint (queues dominate).
    pub fn state_bytes(&self) -> u64 {
        (self.write_queue.len() + self.read_queue.len()) as u64 + 64
    }
}

/// A simulated TCP socket.
#[derive(Debug)]
pub struct TcpSocket {
    /// Socket id within the owning kernel.
    pub id: SockId,
    /// Connection state.
    pub state: TcpState,
    /// Local endpoint (meaningful once bound).
    pub local: Endpoint,
    /// Remote endpoint (meaningful once connected).
    pub remote: Option<Endpoint>,
    /// Next sequence number to send.
    pub snd_nxt: u32,
    /// Oldest unacknowledged sequence number.
    pub snd_una: u32,
    /// Next expected receive sequence number.
    pub rcv_nxt: u32,
    /// Transmitted-but-unacknowledged bytes (`snd_una..snd_nxt`).
    pub write_queue: VecDeque<u8>,
    /// Received-but-unread bytes.
    pub read_queue: VecDeque<u8>,
    /// Pending connections for a listener.
    pub backlog: VecDeque<SockId>,
    /// Repair mode (privileged get/set of the above).
    pub repair: bool,
    /// Current retransmission timeout. Fresh sockets get the ≥1 s default;
    /// repair-mode restore sets the 200 ms minimum (§V-E).
    pub rto: Nanos,
    /// True once this socket was restored via repair mode (for §V-E
    /// accounting and tests).
    pub restored: bool,
    /// Cumulative bytes the application has read off this socket — the
    /// stream offset recorded per recv in the hybrid-replay log.
    pub delivered_bytes: u64,
}

impl TcpSocket {
    /// New closed socket.
    pub fn new(id: SockId, rto_default: Nanos) -> Self {
        TcpSocket {
            id,
            state: TcpState::Closed,
            local: Endpoint::new(0, 0),
            remote: None,
            snd_nxt: 0,
            snd_una: 0,
            rcv_nxt: 0,
            write_queue: VecDeque::new(),
            read_queue: VecDeque::new(),
            backlog: VecDeque::new(),
            repair: false,
            rto: rto_default,
            restored: false,
            delivered_bytes: 0,
        }
    }

    /// Application write: queue `data` and emit one data segment.
    pub fn send(&mut self, data: &[u8]) -> SimResult<Packet> {
        if self.state != TcpState::Established {
            return Err(SimError::InvalidSocketState {
                sock: self.id,
                op: "send",
                state: self.state.name(),
            });
        }
        let seq = self.snd_nxt;
        self.write_queue.extend(data.iter().copied());
        self.snd_nxt = self.snd_nxt.wrapping_add(data.len() as u32);
        Ok(Packet {
            src: self.local,
            dst: self.remote.expect("established socket has a peer"),
            seq,
            ack: self.rcv_nxt,
            flags: TcpFlags::DATA,
            payload: Bytes::copy_from_slice(data),
        })
    }

    /// Application read: drain up to `max` bytes from the read queue.
    pub fn recv(&mut self, max: usize) -> SimResult<Vec<u8>> {
        if self.state == TcpState::Reset {
            return Err(SimError::ConnReset);
        }
        let n = max.min(self.read_queue.len());
        self.delivered_bytes += n as u64;
        Ok(self.read_queue.drain(..n).collect())
    }

    /// Bytes available to read.
    pub fn readable(&self) -> usize {
        self.read_queue.len()
    }

    /// Copy out the readable bytes without consuming them. Drivers use this
    /// to take only whole application frames, leaving partial frames in the
    /// (checkpointed!) read queue — a frame straddling an epoch boundary
    /// must survive a failover inside socket state.
    pub fn peek(&self) -> Vec<u8> {
        self.read_queue.iter().copied().collect()
    }

    /// Consume `n` bytes previously observed via [`TcpSocket::peek`].
    pub fn consume(&mut self, n: usize) {
        let n = n.min(self.read_queue.len());
        self.delivered_bytes += n as u64;
        self.read_queue.drain(..n);
    }

    /// Bytes sent but not yet acknowledged.
    pub fn unacked(&self) -> usize {
        self.write_queue.len()
    }

    /// Handle an incoming segment addressed to this (established or syn-sent)
    /// socket. Returns an optional reply segment.
    pub fn on_segment(&mut self, pkt: &Packet) -> Option<Packet> {
        if pkt.flags.rst {
            self.state = TcpState::Reset;
            return None;
        }
        match self.state {
            TcpState::SynSent if pkt.flags.syn && pkt.flags.ack => {
                // Simplified handshake: SYN segments do not consume sequence
                // numbers in this model, so data starts at seq 0 on each side.
                self.state = TcpState::Established;
                self.rcv_nxt = pkt.seq;
                self.snd_una = pkt.ack;
                // Final ACK of the three-way handshake.
                Some(self.bare_ack())
            }
            TcpState::Established => {
                // Process ACK field.
                if pkt.flags.ack {
                    self.process_ack(pkt.ack);
                }
                // Process payload.
                if !pkt.payload.is_empty() {
                    if pkt.seq == self.rcv_nxt {
                        self.read_queue.extend(pkt.payload.iter().copied());
                        self.rcv_nxt = self.rcv_nxt.wrapping_add(pkt.payload.len() as u32);
                        return Some(self.bare_ack());
                    } else if seq_lt(pkt.seq, self.rcv_nxt) {
                        // Duplicate (retransmission already covered) — re-ACK.
                        return Some(self.bare_ack());
                    }
                    // Out-of-window data: drop (retransmission will cover it).
                }
                None
            }
            _ => None,
        }
    }

    fn process_ack(&mut self, ack: u32) {
        // Advance snd_una and trim the write queue by acked bytes.
        if seq_lt(self.snd_una, ack) || self.snd_una == ack {
            let acked = ack.wrapping_sub(self.snd_una) as usize;
            let drop_n = acked.min(self.write_queue.len());
            self.write_queue.drain(..drop_n);
            self.snd_una = ack;
        }
    }

    fn bare_ack(&self) -> Packet {
        Packet {
            src: self.local,
            dst: self.remote.expect("peer set"),
            seq: self.snd_nxt,
            ack: self.rcv_nxt,
            flags: TcpFlags::ACK,
            payload: Bytes::new(),
        }
    }

    /// Retransmit the head of the write queue (after failover the restored
    /// socket re-sends unacknowledged bytes once its RTO fires; §V-E).
    /// Equivalent to [`TcpSocket::retransmit_at`] with offset 0; callers
    /// draining a backlog larger than [`RTO_MSS`] must walk the window with
    /// `retransmit_at` until it returns `None`.
    pub fn retransmit(&self) -> Option<Packet> {
        self.retransmit_at(0)
    }

    /// Retransmit up to [`RTO_MSS`] unacknowledged bytes starting `offset`
    /// bytes into the write queue. Returns `None` once `offset` reaches the
    /// end of the unacked window (or the socket is not established), so a
    /// drain loop advancing `offset` by each returned payload's length
    /// terminates after covering the whole backlog.
    pub fn retransmit_at(&self, offset: usize) -> Option<Packet> {
        if self.state != TcpState::Established || offset >= self.write_queue.len() {
            return None;
        }
        let end = (offset + RTO_MSS).min(self.write_queue.len());
        let payload: Vec<u8> = self.write_queue.iter().copied().skip(offset).take(end - offset).collect();
        Some(Packet {
            src: self.local,
            dst: self.remote.expect("peer set"),
            seq: self.snd_una.wrapping_add(offset as u32),
            ack: self.rcv_nxt,
            flags: TcpFlags::DATA,
            payload: Bytes::from(payload),
        })
    }

    // ------------------------------------------------------------------
    // Repair mode (§II-B)
    // ------------------------------------------------------------------

    /// Enter/leave repair mode.
    pub fn set_repair(&mut self, on: bool) {
        self.repair = on;
    }

    /// Dump repair state. Requires repair mode.
    pub fn repair_get(&self) -> SimResult<RepairState> {
        if !self.repair {
            return Err(SimError::NotInRepairMode(self.id));
        }
        Ok(RepairState {
            local: self.local,
            remote: self.remote.unwrap_or(Endpoint::new(0, 0)),
            snd_nxt: self.snd_nxt,
            snd_una: self.snd_una,
            rcv_nxt: self.rcv_nxt,
            write_queue: self.write_queue.iter().copied().collect(),
            read_queue: self.read_queue.iter().copied().collect(),
        })
    }

    /// Install repair state onto this socket, marking it Established and
    /// applying the repair-mode minimum RTO (`rto_min`, §V-E's 200 ms —
    /// pass the 1 s default to model the unoptimized kernel).
    pub fn repair_set(&mut self, st: &RepairState, rto_min: Nanos) -> SimResult<()> {
        if !self.repair {
            return Err(SimError::NotInRepairMode(self.id));
        }
        self.local = st.local;
        self.remote = Some(st.remote);
        self.snd_nxt = st.snd_nxt;
        self.snd_una = st.snd_una;
        self.rcv_nxt = st.rcv_nxt;
        self.write_queue = st.write_queue.iter().copied().collect();
        self.read_queue = st.read_queue.iter().copied().collect();
        self.state = TcpState::Established;
        self.rto = rto_min;
        self.restored = true;
        Ok(())
    }
}

/// Sequence-number comparison modulo 2^32 (RFC 793 style).
#[inline]
fn seq_lt(a: u32, b: u32) -> bool {
    (b.wrapping_sub(a) as i32) > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn established_pair() -> (TcpSocket, TcpSocket) {
        let mut a = TcpSocket::new(SockId(1), 1_000_000_000);
        let mut b = TcpSocket::new(SockId(2), 1_000_000_000);
        a.local = Endpoint::new(1, 1000);
        a.remote = Some(Endpoint::new(2, 80));
        a.state = TcpState::Established;
        b.local = Endpoint::new(2, 80);
        b.remote = Some(Endpoint::new(1, 1000));
        b.state = TcpState::Established;
        (a, b)
    }

    #[test]
    fn data_transfer_with_ack() {
        let (mut a, mut b) = established_pair();
        let pkt = a.send(b"hello").unwrap();
        assert_eq!(a.unacked(), 5);
        let ack = b.on_segment(&pkt).expect("data elicits ACK");
        assert_eq!(b.recv(100).unwrap(), b"hello");
        a.on_segment(&ack);
        assert_eq!(a.unacked(), 0, "ACK trims the write queue");
        assert_eq!(a.snd_una, a.snd_nxt);
    }

    #[test]
    fn duplicate_segment_is_reacked_not_redelivered() {
        let (mut a, mut b) = established_pair();
        let pkt = a.send(b"once").unwrap();
        b.on_segment(&pkt);
        let reply = b.on_segment(&pkt); // duplicate
        assert!(reply.is_some(), "duplicate elicits re-ACK");
        assert_eq!(
            b.recv(100).unwrap(),
            b"once",
            "payload delivered exactly once"
        );
    }

    #[test]
    fn rst_breaks_connection() {
        let (mut a, _) = established_pair();
        let rst = Packet {
            src: Endpoint::new(2, 80),
            dst: a.local,
            seq: 0,
            ack: 0,
            flags: TcpFlags::RST,
            payload: Bytes::new(),
        };
        a.on_segment(&rst);
        assert_eq!(a.state, TcpState::Reset);
        assert!(matches!(a.recv(1), Err(SimError::ConnReset)));
        assert!(a.send(b"x").is_err());
    }

    #[test]
    fn retransmit_covers_unacked_bytes() {
        let (mut a, mut b) = established_pair();
        let p1 = a.send(b"lost ").unwrap();
        let _p2 = a.send(b"data").unwrap();
        // p1/p2 never arrive (dropped at failover). Retransmit covers both.
        let rt = a.retransmit().expect("unacked bytes exist");
        assert_eq!(rt.seq, p1.seq);
        assert_eq!(&rt.payload[..], b"lost data");
        let ack = b.on_segment(&rt).unwrap();
        assert_eq!(b.recv(100).unwrap(), b"lost data");
        a.on_segment(&ack);
        assert!(a.retransmit().is_none(), "nothing left to retransmit");
    }

    #[test]
    fn retransmit_at_segments_a_large_window_by_mss() {
        let (mut a, mut b) = established_pair();
        // Queue 3.5 MSS of unacked data across several sends.
        let total = RTO_MSS * 3 + RTO_MSS / 2;
        let data: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();
        for chunk in data.chunks(1000) {
            a.send(chunk).unwrap();
        }
        assert_eq!(a.unacked(), total);
        // Drain the window segment by segment.
        let mut off = 0;
        let mut segs = Vec::new();
        while let Some(pkt) = a.retransmit_at(off) {
            assert!(pkt.payload.len() <= RTO_MSS, "segment within MSS");
            assert_eq!(pkt.seq, a.snd_una.wrapping_add(off as u32));
            off += pkt.payload.len();
            segs.push(pkt);
        }
        assert_eq!(off, total, "drain covers the whole window");
        assert_eq!(segs.len(), 4, "3.5 MSS needs four segments");
        // In-order delivery reassembles the original stream.
        for pkt in &segs {
            b.on_segment(pkt);
        }
        assert_eq!(b.recv(usize::MAX).unwrap(), data);
        // Plain retransmit() is the first segment only.
        let first = a.retransmit().unwrap();
        assert_eq!(first.payload.len(), RTO_MSS);
        assert_eq!(first.seq, a.snd_una);
    }

    #[test]
    fn repair_roundtrip_preserves_everything() {
        let (mut a, mut b) = established_pair();
        let p = a.send(b"unacked!").unwrap();
        b.on_segment(&p); // b has data in read queue; suppose app hasn't read it
        b.send(b"reply").unwrap();

        b.set_repair(true);
        let st = b.repair_get().unwrap();
        assert_eq!(st.read_queue, b"unacked!");
        assert_eq!(st.write_queue, b"reply");

        let mut b2 = TcpSocket::new(SockId(9), 1_000_000_000);
        assert!(
            b2.repair_set(&st, 200_000_000).is_err(),
            "repair mode required"
        );
        b2.set_repair(true);
        b2.repair_set(&st, 200_000_000).unwrap();
        b2.set_repair(false);
        assert_eq!(b2.state, TcpState::Established);
        assert_eq!(
            b2.rto, 200_000_000,
            "repair-restored socket gets min RTO (§V-E)"
        );
        assert!(b2.restored);
        assert_eq!(b2.recv(100).unwrap(), b"unacked!");
        assert_eq!(&b2.retransmit().unwrap().payload[..], b"reply");
    }

    #[test]
    fn repair_get_requires_repair_mode() {
        let (a, _) = established_pair();
        assert!(matches!(a.repair_get(), Err(SimError::NotInRepairMode(_))));
    }

    #[test]
    fn seq_comparison_wraps() {
        assert!(seq_lt(u32::MAX - 1, 2));
        assert!(!seq_lt(2, u32::MAX - 1));
        assert!(seq_lt(0, 1));
    }

    #[test]
    fn state_bytes_accounting() {
        let st = RepairState {
            local: Endpoint::new(1, 1),
            remote: Endpoint::new(2, 2),
            snd_nxt: 0,
            snd_una: 0,
            rcv_nxt: 0,
            write_queue: vec![0; 100],
            read_queue: vec![0; 50],
        };
        assert_eq!(st.state_bytes(), 214);
    }
}
