//! Per-namespace network stack: sockets, listeners, routing, qdisc.

use super::qdisc::{InputGate, InputMode, PlugQdisc};
use super::tcp::{Packet, RepairState, TcpFlags, TcpSocket, TcpState};
use crate::error::{SimError, SimResult};
use crate::ids::{Endpoint, IdAlloc, SockId};
use crate::time::Nanos;
use bytes::Bytes;
use std::collections::HashMap;

/// Aggregate socket-queue statistics (the non-page component of transferred
/// checkpoint state — Table IV: "dirty pages and the read/write queues of TCP
/// sockets" dominate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SocketQueueStats {
    /// Established sockets.
    pub established: usize,
    /// Listening sockets.
    pub listeners: usize,
    /// Total bytes across read+write queues.
    pub queue_bytes: u64,
}

/// The network stack of one namespace.
#[derive(Debug)]
pub struct NetStack {
    /// This stack's flat network address.
    pub addr: u32,
    sockets: HashMap<SockId, TcpSocket>,
    listeners: HashMap<u16, SockId>,
    conns: HashMap<(Endpoint, Endpoint), SockId>,
    sock_alloc: IdAlloc,
    ephemeral: u16,
    rto_default: Nanos,
    /// Egress plug (Remus output buffering). Only honored when `plugged`.
    pub qdisc: PlugQdisc,
    /// Whether egress is buffered in the qdisc (true under replication).
    pub plugged: bool,
    /// Ingress gate (§V-C input blocking).
    pub input_gate: InputGate,
    /// Egress packets ready to leave the stack now.
    out_ready: Vec<Packet>,
    broken_connections: u64,
    rsts_sent: u64,
    /// Stack-wide count of non-empty application reads — the global delivery
    /// order recorded per recv in the hybrid-replay log.
    delivered_seq: u64,
}

impl NetStack {
    /// New stack at `addr`. `rto_default` seeds fresh sockets (§V-E: ≥1 s).
    pub fn new(addr: u32, rto_default: Nanos, input_mode: InputMode) -> Self {
        NetStack {
            addr,
            sockets: HashMap::new(),
            listeners: HashMap::new(),
            conns: HashMap::new(),
            sock_alloc: IdAlloc::default(),
            ephemeral: 32768,
            rto_default,
            qdisc: PlugQdisc::new(),
            plugged: false,
            input_gate: InputGate::new(input_mode),
            out_ready: Vec::new(),
            broken_connections: 0,
            rsts_sent: 0,
            delivered_seq: 0,
        }
    }

    // ------------------------------------------------------------------
    // Socket API
    // ------------------------------------------------------------------

    /// Create a socket.
    pub fn socket(&mut self) -> SockId {
        let id = SockId(self.sock_alloc.alloc() as u32);
        self.sockets
            .insert(id, TcpSocket::new(id, self.rto_default));
        id
    }

    /// Bind to a local port.
    pub fn bind(&mut self, sock: SockId, port: u16) -> SimResult<()> {
        if self.listeners.contains_key(&port) {
            return Err(SimError::AddrInUse(port));
        }
        let addr = self.addr;
        let s = self.sock_mut(sock)?;
        s.local = Endpoint::new(addr, port);
        Ok(())
    }

    /// Start listening.
    pub fn listen(&mut self, sock: SockId) -> SimResult<()> {
        let port = {
            let s = self.sock_mut(sock)?;
            s.state = TcpState::Listen;
            s.local.port
        };
        if let Some(&existing) = self.listeners.get(&port) {
            if existing != sock {
                return Err(SimError::AddrInUse(port));
            }
        }
        self.listeners.insert(port, sock);
        Ok(())
    }

    /// Active open: emits a SYN through egress. The connection becomes
    /// established when the SYN+ACK comes back through [`NetStack::ingress`].
    pub fn connect(&mut self, sock: SockId, remote: Endpoint) -> SimResult<()> {
        let addr = self.addr;
        let port = self.alloc_ephemeral();
        let s = self.sock_mut(sock)?;
        if s.state != TcpState::Closed {
            return Err(SimError::InvalidSocketState {
                sock,
                op: "connect",
                state: s.state.name(),
            });
        }
        if s.local.port == 0 {
            s.local = Endpoint::new(addr, port);
        }
        s.remote = Some(remote);
        s.state = TcpState::SynSent;
        let syn = Packet {
            src: s.local,
            dst: remote,
            seq: 0,
            ack: 0,
            flags: TcpFlags::SYN,
            payload: Bytes::new(),
        };
        let local = s.local;
        self.conns.insert((local, remote), sock);
        self.egress(syn);
        Ok(())
    }

    /// Accept one pending connection from a listener's backlog.
    pub fn accept(&mut self, listener: SockId) -> SimResult<Option<SockId>> {
        let s = self.sock_mut(listener)?;
        if s.state != TcpState::Listen {
            return Err(SimError::InvalidSocketState {
                sock: listener,
                op: "accept",
                state: s.state.name(),
            });
        }
        Ok(s.backlog.pop_front())
    }

    /// Application send: data goes through the egress path (buffered when
    /// plugged — the Remus output-commit point).
    pub fn send(&mut self, sock: SockId, data: &[u8]) -> SimResult<usize> {
        let pkt = self.sock_mut(sock)?.send(data)?;
        self.egress(pkt);
        Ok(data.len())
    }

    /// Application receive.
    pub fn recv(&mut self, sock: SockId, max: usize) -> SimResult<Vec<u8>> {
        let data = self.sock_mut(sock)?.recv(max)?;
        if !data.is_empty() {
            self.delivered_seq += 1;
        }
        Ok(data)
    }

    /// Stack-wide delivery sequence number (bumped once per non-empty
    /// application read — the recv-order axis of the hybrid-replay log).
    pub fn delivered_seq(&self) -> u64 {
        self.delivered_seq
    }

    /// Peek the readable bytes without consuming (see [`TcpSocket::peek`]).
    pub fn peek_recv(&self, sock: SockId) -> SimResult<Vec<u8>> {
        Ok(self.sock(sock)?.peek())
    }

    /// Consume `n` peeked bytes.
    pub fn consume_recv(&mut self, sock: SockId, n: usize) -> SimResult<()> {
        self.sock_mut(sock)?.consume(n);
        Ok(())
    }

    /// Immutable socket access.
    pub fn sock(&self, sock: SockId) -> SimResult<&TcpSocket> {
        self.sockets.get(&sock).ok_or(SimError::NoSuchSocket(sock))
    }

    /// Mutable socket access.
    pub fn sock_mut(&mut self, sock: SockId) -> SimResult<&mut TcpSocket> {
        self.sockets
            .get_mut(&sock)
            .ok_or(SimError::NoSuchSocket(sock))
    }

    /// Close and remove a socket (no FIN exchange modeled — abrupt close is
    /// all the replication paths need).
    pub fn close(&mut self, sock: SockId) -> SimResult<()> {
        let s = self
            .sockets
            .remove(&sock)
            .ok_or(SimError::NoSuchSocket(sock))?;
        if let Some(remote) = s.remote {
            self.conns.remove(&(s.local, remote));
        }
        if s.state == TcpState::Listen {
            self.listeners.remove(&s.local.port);
        }
        Ok(())
    }

    fn alloc_ephemeral(&mut self) -> u16 {
        let p = self.ephemeral;
        self.ephemeral = self.ephemeral.wrapping_add(1).max(32768);
        p
    }

    // ------------------------------------------------------------------
    // Packet I/O
    // ------------------------------------------------------------------

    fn egress(&mut self, pkt: Packet) {
        if self.plugged {
            self.qdisc.enqueue(pkt);
        } else {
            self.out_ready.push(pkt);
        }
    }

    /// Deliver an incoming packet from the wire. Passes the ingress gate,
    /// performs connection matching, and may generate replies via egress.
    pub fn ingress(&mut self, pkt: Packet) {
        let Some(pkt) = self.input_gate.offer(pkt) else {
            return; // blocked: buffered or dropped
        };
        self.process_segment(pkt);
    }

    fn process_segment(&mut self, pkt: Packet) {
        let key = (pkt.dst, pkt.src);
        if let Some(&sid) = self.conns.get(&key) {
            let was_reset = self.sockets[&sid].state == TcpState::Reset;
            let reply = self
                .sockets
                .get_mut(&sid)
                .expect("conn map in sync")
                .on_segment(&pkt);
            if !was_reset && self.sockets[&sid].state == TcpState::Reset {
                self.broken_connections += 1;
            }
            if let Some(r) = reply {
                self.egress(r);
            }
            return;
        }
        if pkt.flags.syn && !pkt.flags.ack {
            if let Some(&lid) = self.listeners.get(&pkt.dst.port) {
                // Create the child connection, reply SYN+ACK.
                let child = self.socket();
                {
                    let c = self.sockets.get_mut(&child).expect("just created");
                    c.state = TcpState::Established;
                    c.local = pkt.dst;
                    c.remote = Some(pkt.src);
                    // SYNs do not consume sequence numbers in this model.
                    c.rcv_nxt = pkt.seq;
                }
                self.conns.insert((pkt.dst, pkt.src), child);
                self.sockets
                    .get_mut(&lid)
                    .expect("listener exists")
                    .backlog
                    .push_back(child);
                let synack = Packet {
                    src: pkt.dst,
                    dst: pkt.src,
                    seq: 0,
                    ack: pkt.seq,
                    flags: TcpFlags::SYN_ACK,
                    payload: Bytes::new(),
                };
                self.egress(synack);
                return;
            }
        }
        if !pkt.flags.rst {
            // No socket for this packet: the kernel answers RST — the exact
            // §III hazard during recovery if input is not blocked.
            self.rsts_sent += 1;
            let rst = Packet {
                src: pkt.dst,
                dst: pkt.src,
                seq: pkt.ack,
                ack: pkt.seq,
                flags: TcpFlags::RST,
                payload: Bytes::new(),
            };
            self.out_ready.push(rst); // RSTs bypass the plug: kernel-generated
        }
    }

    /// Drain packets ready to leave the stack (pass-through egress + RSTs).
    pub fn take_ready(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.out_ready)
    }

    /// Inject a raw packet into the egress-ready queue, bypassing the plug
    /// (used for driver-triggered retransmissions, which model the TCP
    /// timer rather than application sends).
    pub fn inject_egress(&mut self, pkt: Packet) {
        self.out_ready.push(pkt);
    }

    /// Release the plugged output buffer (epoch commit): packets move to the
    /// ready queue, in order.
    pub fn release_output(&mut self) -> usize {
        let pkts = self.qdisc.release();
        let n = pkts.len();
        self.out_ready.extend(pkts);
        n
    }

    /// Discard plugged output (failover: uncommitted output must not escape).
    pub fn discard_output(&mut self) -> usize {
        self.qdisc.discard()
    }

    /// Block input (checkpoint stop phase / recovery window).
    pub fn block_input(&mut self) {
        self.input_gate.block();
    }

    /// Unblock input, reprocessing anything buffered by the gate.
    pub fn unblock_input(&mut self) {
        let held = self.input_gate.unblock();
        for pkt in held {
            self.process_segment(pkt);
        }
    }

    // ------------------------------------------------------------------
    // Checkpoint support
    // ------------------------------------------------------------------

    /// Dump all established sockets via repair mode and all listening ports.
    /// Returns `(listeners, repair states)` sorted for determinism.
    pub fn checkpoint_sockets(&mut self) -> (Vec<u16>, Vec<RepairState>) {
        let mut ports: Vec<u16> = self.listeners.keys().copied().collect();
        ports.sort_unstable();
        let mut ids: Vec<SockId> = self
            .sockets
            .iter()
            .filter(|(_, s)| s.state == TcpState::Established)
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        let mut states = Vec::with_capacity(ids.len());
        for id in ids {
            let s = self.sockets.get_mut(&id).expect("id just listed");
            s.set_repair(true);
            states.push(s.repair_get().expect("repair mode just set"));
            s.set_repair(false);
        }
        (ports, states)
    }

    /// Restore listeners and established sockets from a checkpoint.
    /// `rto_min` is applied to restored sockets (§V-E). Returns the restored
    /// established socket ids in the same order as `states`.
    pub fn restore_sockets(
        &mut self,
        listeners: &[u16],
        states: &[RepairState],
        rto_min: Nanos,
    ) -> SimResult<Vec<SockId>> {
        for &port in listeners {
            let l = self.socket();
            self.bind(l, port)?;
            self.listen(l)?;
        }
        let mut out = Vec::with_capacity(states.len());
        for st in states {
            let id = self.socket();
            let s = self.sock_mut(id).expect("just created");
            s.set_repair(true);
            s.repair_set(st, rto_min)?;
            s.set_repair(false);
            self.conns.insert((st.local, st.remote), id);
            out.push(id);
        }
        Ok(out)
    }

    /// Retransmit unacknowledged bytes on every restored socket (fires after
    /// the restored sockets' RTO at failover; §V-E). Each socket's whole
    /// unacked window is drained in MSS-sized segments — a backlog larger
    /// than one MSS produces multiple packets, not a truncated first one.
    pub fn retransmit_all(&mut self) -> usize {
        let mut pkts = Vec::new();
        for s in self.sockets.values() {
            if s.restored {
                let mut off = 0;
                while let Some(p) = s.retransmit_at(off) {
                    off += p.payload.len();
                    pkts.push(p);
                }
            }
        }
        let n = pkts.len();
        for p in pkts {
            self.egress(p);
        }
        n
    }

    /// Ids and remote endpoints of all established sockets, sorted by id
    /// (drivers dispatch per-connection work from this).
    pub fn established_ids(&self) -> Vec<(SockId, Endpoint)> {
        let mut v: Vec<(SockId, Endpoint)> = self
            .sockets
            .values()
            .filter(|s| s.state == TcpState::Established)
            .map(|s| (s.id, s.remote.expect("established socket has a peer")))
            .collect();
        v.sort_unstable_by_key(|(id, _)| *id);
        v
    }

    /// Queue statistics for checkpoint-size accounting.
    pub fn queue_stats(&self) -> SocketQueueStats {
        let mut st = SocketQueueStats {
            established: 0,
            listeners: self.listeners.len(),
            queue_bytes: 0,
        };
        for s in self.sockets.values() {
            if s.state == TcpState::Established {
                st.established += 1;
                st.queue_bytes += (s.write_queue.len() + s.read_queue.len()) as u64;
            }
        }
        st
    }

    /// Number of sockets (all states).
    pub fn socket_count(&self) -> usize {
        self.sockets.len()
    }

    /// Connections broken by an incoming RST (the §VII-A validation check).
    pub fn broken_connections(&self) -> u64 {
        self.broken_connections
    }

    /// RSTs this stack has generated for orphaned packets.
    pub fn rsts_sent(&self) -> u64 {
        self.rsts_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RTO: Nanos = 1_000_000_000;

    /// Shuttle packets between two stacks until quiescent.
    fn pump(a: &mut NetStack, b: &mut NetStack) {
        loop {
            let from_a = a.take_ready();
            let from_b = b.take_ready();
            if from_a.is_empty() && from_b.is_empty() {
                break;
            }
            for p in from_a {
                b.ingress(p);
            }
            for p in from_b {
                a.ingress(p);
            }
        }
    }

    fn connected_pair() -> (NetStack, SockId, NetStack, SockId, SockId) {
        let mut server = NetStack::new(1, RTO, InputMode::Buffer);
        let mut client = NetStack::new(2, RTO, InputMode::Buffer);
        let l = server.socket();
        server.bind(l, 80).unwrap();
        server.listen(l).unwrap();
        let c = client.socket();
        client.connect(c, Endpoint::new(1, 80)).unwrap();
        pump(&mut client, &mut server);
        let child = server.accept(l).unwrap().expect("backlog has the child");
        (server, child, client, c, l)
    }

    #[test]
    fn handshake_and_echo() {
        let (mut server, child, mut client, c, _) = connected_pair();
        assert_eq!(client.sock(c).unwrap().state, TcpState::Established);
        client.send(c, b"ping").unwrap();
        pump(&mut client, &mut server);
        assert_eq!(server.recv(child, 64).unwrap(), b"ping");
        server.send(child, b"pong").unwrap();
        pump(&mut client, &mut server);
        assert_eq!(client.recv(c, 64).unwrap(), b"pong");
        assert_eq!(client.sock(c).unwrap().unacked(), 0);
        assert_eq!(server.sock(child).unwrap().unacked(), 0);
    }

    #[test]
    fn connect_to_closed_port_gets_rst() {
        let mut server = NetStack::new(1, RTO, InputMode::Buffer);
        let mut client = NetStack::new(2, RTO, InputMode::Buffer);
        let c = client.socket();
        client.connect(c, Endpoint::new(1, 9999)).unwrap();
        pump(&mut client, &mut server);
        assert_eq!(client.sock(c).unwrap().state, TcpState::Reset);
        assert_eq!(server.rsts_sent(), 1);
        assert_eq!(client.broken_connections(), 1);
    }

    #[test]
    fn plugged_output_held_until_release() {
        let (mut server, child, mut client, c, _) = connected_pair();
        server.plugged = true;
        client.send(c, b"req").unwrap();
        pump(&mut client, &mut server);
        assert_eq!(server.recv(child, 64).unwrap(), b"req");
        server.send(child, b"resp").unwrap();
        pump(&mut client, &mut server);
        assert_eq!(
            client.sock(c).unwrap().readable(),
            0,
            "response held by plug"
        );
        assert!(server.qdisc.pending() >= 1);
        server.release_output();
        pump(&mut client, &mut server);
        assert_eq!(client.recv(c, 64).unwrap(), b"resp");
    }

    #[test]
    fn discarded_output_never_reaches_client() {
        let (mut server, child, mut client, c, _) = connected_pair();
        server.plugged = true;
        client.send(c, b"req").unwrap();
        pump(&mut client, &mut server);
        server.recv(child, 64).unwrap();
        server.send(child, b"uncommitted").unwrap();
        let n = server.discard_output();
        assert!(n >= 1);
        pump(&mut client, &mut server);
        assert_eq!(client.sock(c).unwrap().readable(), 0);
    }

    #[test]
    fn input_blocking_buffers_and_replays() {
        let (mut server, child, mut client, c, _) = connected_pair();
        server.block_input();
        client.send(c, b"during-stop").unwrap();
        pump(&mut client, &mut server);
        assert_eq!(
            server.recv(child, 64).unwrap(),
            b"",
            "blocked: nothing delivered"
        );
        server.unblock_input();
        pump(&mut client, &mut server);
        assert_eq!(server.recv(child, 64).unwrap(), b"during-stop");
    }

    #[test]
    fn checkpoint_restore_sockets_end_to_end() {
        let (mut server, child, mut client, c, _l) = connected_pair();
        // In-flight state: client sent a request the server hasn't read;
        // server sent a response the client hasn't acked (drop the wire).
        client.send(c, b"query").unwrap();
        for p in client.take_ready() {
            server.ingress(p);
        }
        server.take_ready(); // drop server ACK + anything else: wire loss
        server.send(child, b"answer").unwrap();
        server.take_ready(); // response lost on the wire too

        let (ports, states) = server.checkpoint_sockets();
        assert_eq!(ports, vec![80]);
        assert_eq!(states.len(), 1);
        assert_eq!(states[0].read_queue, b"query");
        assert_eq!(states[0].write_queue, b"answer");

        // "Backup host": fresh stack at the same address.
        let mut backup = NetStack::new(1, RTO, InputMode::Buffer);
        let restored = backup
            .restore_sockets(&ports, &states, 200_000_000)
            .unwrap();
        assert_eq!(restored.len(), 1);
        assert_eq!(backup.recv(restored[0], 64).unwrap(), b"query");
        // Retransmission recovers the lost response.
        assert_eq!(backup.retransmit_all(), 1);
        pump(&mut client, &mut backup);
        assert_eq!(client.recv(c, 64).unwrap(), b"answer");
        assert_eq!(
            client.broken_connections(),
            0,
            "no RST ever reached the client"
        );
    }

    #[test]
    fn restore_without_blocking_input_causes_rst() {
        // The §III hazard: if packets arrive after the namespace exists but
        // before the socket is restored, the kernel RSTs the connection.
        let (mut server, _child, mut client, c, _l) = connected_pair();
        let (ports, states) = server.checkpoint_sockets();
        let mut backup = NetStack::new(1, RTO, InputMode::Buffer);
        // Input NOT blocked; client data arrives before restore_sockets.
        client.send(c, b"early").unwrap();
        for p in client.take_ready() {
            backup.ingress(p);
        }
        for p in backup.take_ready() {
            client.ingress(p);
        }
        assert_eq!(client.broken_connections(), 1, "RST broke the connection");
        // Whereas with blocking, the same sequence is safe:
        let mut backup2 = NetStack::new(1, RTO, InputMode::Buffer);
        let mut client2 = NetStack::new(2, RTO, InputMode::Buffer);
        let c2 = client2.socket();
        {
            // seed an established pair via checkpoint state
            backup2.block_input();
            client2.sock_mut(c2).unwrap().state = TcpState::Established;
            client2.sock_mut(c2).unwrap().local = states[0].remote;
            client2.sock_mut(c2).unwrap().remote = Some(states[0].local);
            client2.sock_mut(c2).unwrap().snd_nxt = states[0].rcv_nxt;
            client2.sock_mut(c2).unwrap().snd_una = states[0].rcv_nxt;
            client2.sock_mut(c2).unwrap().rcv_nxt = states[0].snd_nxt;
            client2
                .conns
                .insert((states[0].remote, states[0].local), c2);
        }
        client2.send(c2, b"early").unwrap();
        for p in client2.take_ready() {
            backup2.ingress(p); // gated
        }
        backup2
            .restore_sockets(&ports, &states, 200_000_000)
            .unwrap();
        backup2.unblock_input();
        for p in backup2.take_ready() {
            client2.ingress(p);
        }
        assert_eq!(client2.broken_connections(), 0);
    }

    #[test]
    fn bind_conflicts() {
        let mut s = NetStack::new(1, RTO, InputMode::Buffer);
        let a = s.socket();
        let b = s.socket();
        s.bind(a, 80).unwrap();
        s.listen(a).unwrap();
        assert!(matches!(s.bind(b, 80), Err(SimError::AddrInUse(80))));
    }

    #[test]
    fn queue_stats_reflect_unread_and_unacked() {
        let (mut server, child, mut client, c, _) = connected_pair();
        client.send(c, b"0123456789").unwrap();
        for p in client.take_ready() {
            server.ingress(p);
        }
        server.take_ready();
        server.send(child, b"abcde").unwrap();
        let st = server.queue_stats();
        assert_eq!(st.established, 1);
        assert_eq!(st.listeners, 1);
        assert_eq!(st.queue_bytes, 15, "10 unread + 5 unacked");
    }

    #[test]
    fn close_removes_socket() {
        let (mut server, child, _client, _c, l) = connected_pair();
        assert_eq!(server.socket_count(), 2);
        server.close(child).unwrap();
        server.close(l).unwrap();
        assert_eq!(server.socket_count(), 0);
        assert!(server.close(child).is_err());
    }
}
