//! Control groups: `cpuacct` (drives the failure detector) and freezer state.

use crate::ids::CgroupId;
use crate::time::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One control group.
///
/// NiLiCon's detector reads `cpuacct.usage` every 30 ms and only sends a
/// heartbeat when it has advanced (§IV) — a hung container stops producing
/// heartbeats even if the host is alive.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cgroup {
    /// Id.
    pub id: CgroupId,
    /// Path under the cgroup fs (e.g. `/docker/abc123`).
    pub path: String,
    /// Accumulated CPU usage of all member tasks, virtual nanos
    /// (`cpuacct.usage`).
    pub cpuacct_usage: Nanos,
    /// Frozen by the freezer cgroup controller.
    pub frozen: bool,
    /// cpu.shares-style weight (checkpointed; not used for scheduling).
    pub cpu_shares: u32,
    /// memory.limit_in_bytes-style limit (checkpointed; not enforced).
    pub memory_limit: u64,
}

impl Cgroup {
    /// New cgroup at `path`.
    pub fn new(id: CgroupId, path: &str) -> Self {
        Cgroup {
            id,
            path: path.to_string(),
            cpuacct_usage: 0,
            frozen: false,
            cpu_shares: 1024,
            memory_limit: 4 << 30, // the paper's 4 GB per container (§VI)
        }
    }
}

/// The cgroup hierarchy of one kernel.
#[derive(Debug, Default)]
pub struct CgroupTree {
    groups: HashMap<CgroupId, Cgroup>,
    next: u32,
}

impl CgroupTree {
    /// Empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a cgroup.
    pub fn create(&mut self, path: &str) -> CgroupId {
        self.next += 1;
        let id = CgroupId(self.next);
        self.groups.insert(id, Cgroup::new(id, path));
        id
    }

    /// Lookup.
    pub fn get(&self, id: CgroupId) -> Option<&Cgroup> {
        self.groups.get(&id)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, id: CgroupId) -> Option<&mut Cgroup> {
        self.groups.get_mut(&id)
    }

    /// Charge CPU time to a cgroup (the scheduler does this as container
    /// threads run; the detector reads it back).
    pub fn charge_cpu(&mut self, id: CgroupId, ns: Nanos) {
        if let Some(g) = self.groups.get_mut(&id) {
            g.cpuacct_usage += ns;
        }
    }

    /// Read `cpuacct.usage`.
    pub fn cpuacct_usage(&self, id: CgroupId) -> Nanos {
        self.groups.get(&id).map_or(0, |g| g.cpuacct_usage)
    }

    /// Snapshot all cgroups (checkpoint collection), sorted by id.
    pub fn snapshot(&self) -> Vec<Cgroup> {
        let mut v: Vec<Cgroup> = self.groups.values().cloned().collect();
        v.sort_by_key(|g| g.id);
        v
    }

    /// Install a cgroup snapshot at restore.
    pub fn install(&mut self, groups: &[Cgroup]) {
        for g in groups {
            self.next = self.next.max(g.id.0);
            self.groups.insert(g.id, g.clone());
        }
    }

    /// Number of cgroups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpuacct_accumulates() {
        let mut t = CgroupTree::new();
        let id = t.create("/docker/c1");
        assert_eq!(t.cpuacct_usage(id), 0);
        t.charge_cpu(id, 1000);
        t.charge_cpu(id, 500);
        assert_eq!(t.cpuacct_usage(id), 1500);
        assert_eq!(
            t.cpuacct_usage(CgroupId(99)),
            0,
            "unknown cgroup reads zero"
        );
    }

    #[test]
    fn snapshot_install_roundtrip() {
        let mut t = CgroupTree::new();
        let a = t.create("/docker/a");
        t.create("/docker/b");
        t.charge_cpu(a, 777);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);

        let mut t2 = CgroupTree::new();
        t2.install(&snap);
        assert_eq!(t2.cpuacct_usage(a), 777);
        assert_eq!(t2.len(), 2);
        // Post-restore allocation does not collide with restored ids.
        let c = t2.create("/docker/c");
        assert!(snap.iter().all(|g| g.id != c));
    }

    #[test]
    fn defaults_match_paper_setup() {
        let g = Cgroup::new(CgroupId(1), "/x");
        assert_eq!(g.memory_limit, 4 << 30, "§VI: 4GB per container");
        assert!(!g.frozen);
    }
}
