//! Simulated VFS: inodes, page cache with DNC tracking, paths, and mounts.
//!
//! The page-cache DNC ("Dirty but Not Checkpointed") bit and the `fgetfc`
//! syscall are the paper's §III kernel changes: instead of flushing the file
//! system cache every epoch (CRIU's NAS-based approach, "prohibitive overhead
//! of up to hundreds of milliseconds"), NiLiCon checkpoints exactly the cache
//! entries modified since the previous checkpoint.

mod inode;
mod pagecache;
mod vfs;

pub use inode::{Inode, InodeKind};
pub use pagecache::{CachePage, FsCacheCheckpoint, PageCache};
pub use vfs::{Mount, Vfs, VfsStats};
