//! Inodes.

use crate::ids::Ino;
use serde::{Deserialize, Serialize};

/// What an inode names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InodeKind {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
    /// Device file (part of the infrequently-modified state set, §V-B).
    Device,
}

/// Inode metadata.
///
/// The `dnc` bit is the paper's new inode-cache state: set whenever metadata
/// changes, collected and cleared by `fgetfc`, restored with `chown`-style
/// syscalls (§III).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Inode {
    /// Inode number.
    pub ino: Ino,
    /// Kind.
    pub kind: InodeKind,
    /// File size in bytes.
    pub size: u64,
    /// Permission bits (e.g. 0o644).
    pub mode: u32,
    /// Owner uid.
    pub uid: u32,
    /// Owner gid.
    pub gid: u32,
    /// Modification time, virtual nanos.
    pub mtime: u64,
    /// Dirty-but-Not-Checkpointed: metadata changed since last `fgetfc`.
    pub dnc: bool,
}

impl Inode {
    /// A fresh regular file inode.
    pub fn regular(ino: Ino) -> Self {
        Inode {
            ino,
            kind: InodeKind::Regular,
            size: 0,
            mode: 0o644,
            uid: 0,
            gid: 0,
            mtime: 0,
            dnc: true,
        }
    }

    /// A fresh directory inode.
    pub fn directory(ino: Ino) -> Self {
        Inode {
            ino,
            kind: InodeKind::Directory,
            size: 0,
            mode: 0o755,
            uid: 0,
            gid: 0,
            mtime: 0,
            dnc: true,
        }
    }

    /// A fresh device inode.
    pub fn device(ino: Ino) -> Self {
        Inode {
            ino,
            kind: InodeKind::Device,
            size: 0,
            mode: 0o600,
            uid: 0,
            gid: 0,
            mtime: 0,
            dnc: true,
        }
    }

    /// Record a metadata mutation at time `now`.
    pub fn touch_meta(&mut self, now: u64) {
        self.mtime = now;
        self.dnc = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let f = Inode::regular(Ino(1));
        assert_eq!(f.kind, InodeKind::Regular);
        assert_eq!(f.mode, 0o644);
        assert!(f.dnc, "fresh inode has uncheckpointed metadata");
        assert_eq!(Inode::directory(Ino(2)).kind, InodeKind::Directory);
        assert_eq!(Inode::device(Ino(3)).kind, InodeKind::Device);
    }

    #[test]
    fn touch_meta_sets_dnc() {
        let mut f = Inode::regular(Ino(1));
        f.dnc = false;
        f.touch_meta(42);
        assert!(f.dnc);
        assert_eq!(f.mtime, 42);
    }
}
