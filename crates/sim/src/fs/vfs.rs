//! Paths, inode table, mounts — the VFS facade over cache + block device.

use super::inode::{Inode, InodeKind};
use super::pagecache::{FsCacheCheckpoint, PageCache};
use crate::block::BlockDevice;
use crate::error::{SimError, SimResult};
use crate::ids::{DevId, IdAlloc, Ino, MountId};
use crate::PAGE_SIZE;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// One mount-table entry (part of the infrequently-modified state set).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mount {
    /// Mount id.
    pub id: MountId,
    /// Source (device or pseudo-fs name).
    pub source: String,
    /// Mount point path.
    pub target: String,
    /// Filesystem type ("ext4", "proc", "overlay", ...).
    pub fstype: String,
}

/// Aggregate VFS statistics used by checkpoint cost accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VfsStats {
    /// Regular + directory inodes.
    pub inodes: usize,
    /// Device inodes (checkpointed in the infrequently-modified set).
    pub device_files: usize,
    /// Mount entries.
    pub mounts: usize,
}

/// The VFS of one kernel: inode table, path map, page cache, mounts, and the
/// backing block device.
#[derive(Debug)]
pub struct Vfs {
    inodes: HashMap<Ino, Inode>,
    /// Absolute path -> inode. A flat map: full directory-tree semantics are
    /// not needed by any replication code path, and a flat map keeps lookups
    /// honest and simple.
    paths: BTreeMap<String, Ino>,
    /// The page cache (public for checkpoint code paths).
    pub cache: PageCache,
    /// Backing block device (public: DRBD hooks drain its write log).
    pub disk: BlockDevice,
    mounts: Vec<Mount>,
    ino_alloc: IdAlloc,
    mnt_alloc: IdAlloc,
}

impl Default for Vfs {
    fn default() -> Self {
        Self::new(DevId(0))
    }
}

impl Vfs {
    /// Fresh VFS with a root directory and a backing device.
    pub fn new(dev: DevId) -> Self {
        let mut v = Vfs {
            inodes: HashMap::new(),
            paths: BTreeMap::new(),
            cache: PageCache::new(),
            disk: BlockDevice::new(dev),
            mounts: Vec::new(),
            ino_alloc: IdAlloc::starting_at(2), // ino 1 = root
            mnt_alloc: IdAlloc::default(),
        };
        let root = Inode::directory(Ino(1));
        v.inodes.insert(Ino(1), root);
        v.paths.insert("/".to_string(), Ino(1));
        v
    }

    // ------------------------------------------------------------------
    // Namespace operations
    // ------------------------------------------------------------------

    /// Create a file/directory/device at `path`.
    pub fn create(&mut self, path: &str, kind: InodeKind, now: u64) -> SimResult<Ino> {
        if self.paths.contains_key(path) {
            return Err(SimError::PathExists(path.to_string()));
        }
        let ino = Ino(self.ino_alloc.alloc());
        let mut inode = match kind {
            InodeKind::Regular => Inode::regular(ino),
            InodeKind::Directory => Inode::directory(ino),
            InodeKind::Device => Inode::device(ino),
        };
        inode.mtime = now;
        self.inodes.insert(ino, inode);
        self.paths.insert(path.to_string(), ino);
        Ok(ino)
    }

    /// Look up a path.
    pub fn lookup(&self, path: &str) -> SimResult<Ino> {
        self.paths
            .get(path)
            .copied()
            .ok_or_else(|| SimError::NoSuchPath(path.to_string()))
    }

    /// Remove a path (and its inode — no hard links in the simulation).
    pub fn unlink(&mut self, path: &str) -> SimResult<()> {
        let ino = self
            .paths
            .remove(path)
            .ok_or_else(|| SimError::NoSuchPath(path.to_string()))?;
        self.inodes.remove(&ino);
        Ok(())
    }

    /// Inode metadata.
    pub fn inode(&self, ino: Ino) -> SimResult<&Inode> {
        self.inodes.get(&ino).ok_or(SimError::NoSuchInode(ino))
    }

    /// Mutable inode metadata.
    pub fn inode_mut(&mut self, ino: Ino) -> SimResult<&mut Inode> {
        self.inodes.get_mut(&ino).ok_or(SimError::NoSuchInode(ino))
    }

    /// `chown` — restores inode-cache state at failover (§III).
    pub fn chown(&mut self, ino: Ino, uid: u32, gid: u32, now: u64) -> SimResult<()> {
        let i = self.inode_mut(ino)?;
        i.uid = uid;
        i.gid = gid;
        i.touch_meta(now);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Data operations (through the page cache)
    // ------------------------------------------------------------------

    /// Positional write.
    pub fn pwrite(&mut self, ino: Ino, offset: u64, data: &[u8], now: u64) -> SimResult<usize> {
        // Validate before mutating.
        self.inode(ino)?;
        let mut written = 0usize;
        let mut cur = offset;
        while written < data.len() {
            let page_idx = cur / PAGE_SIZE as u64;
            let in_page = (cur % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(data.len() - written);
            self.cache
                .write(ino, page_idx, in_page, &data[written..written + n]);
            written += n;
            cur += n as u64;
        }
        let inode = self.inode_mut(ino).expect("validated above");
        inode.size = inode.size.max(offset + data.len() as u64);
        inode.touch_meta(now);
        Ok(written)
    }

    /// Positional read (short reads at EOF).
    pub fn pread(&mut self, ino: Ino, offset: u64, buf: &mut [u8]) -> SimResult<usize> {
        let size = self.inode(ino)?.size;
        if offset >= size {
            return Ok(0);
        }
        let to_read = buf.len().min((size - offset) as usize);
        let mut read = 0usize;
        let mut cur = offset;
        while read < to_read {
            let page_idx = cur / PAGE_SIZE as u64;
            let in_page = (cur % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(to_read - read);
            self.cache
                .read(&self.disk, ino, page_idx, in_page, &mut buf[read..read + n]);
            read += n;
            cur += n as u64;
        }
        Ok(read)
    }

    /// `fsync`: write back the inode's dirty cache pages to the block device
    /// (generating replicated disk writes). Returns pages written.
    pub fn fsync(&mut self, ino: Ino) -> SimResult<usize> {
        self.inode(ino)?;
        Ok(self.cache.flush(&mut self.disk, Some(ino)))
    }

    /// Full sync of every dirty page.
    pub fn sync_all(&mut self) -> usize {
        self.cache.flush(&mut self.disk, None)
    }

    // ------------------------------------------------------------------
    // Mounts
    // ------------------------------------------------------------------

    /// Add a mount entry.
    pub fn mount(&mut self, source: &str, target: &str, fstype: &str) -> MountId {
        let id = MountId(self.mnt_alloc.alloc() as u32);
        self.mounts.push(Mount {
            id,
            source: source.to_string(),
            target: target.to_string(),
            fstype: fstype.to_string(),
        });
        id
    }

    /// Remove a mount entry.
    pub fn umount(&mut self, id: MountId) -> SimResult<()> {
        let before = self.mounts.len();
        self.mounts.retain(|m| m.id != id);
        if self.mounts.len() == before {
            return Err(SimError::Invalid(format!("no mount {id}")));
        }
        Ok(())
    }

    /// Mount table snapshot.
    pub fn mounts(&self) -> &[Mount] {
        &self.mounts
    }

    // ------------------------------------------------------------------
    // Checkpoint support
    // ------------------------------------------------------------------

    /// `fgetfc` (§III): collect DNC page-cache entries *and* DNC inodes,
    /// clearing both DNC sets.
    pub fn fgetfc(&mut self) -> (FsCacheCheckpoint, Vec<Inode>) {
        let pages = self.cache.fgetfc();
        let mut dnc_inodes: Vec<Inode> = self
            .inodes
            .values_mut()
            .filter(|i| i.dnc)
            .map(|i| {
                i.dnc = false;
                i.clone()
            })
            .collect();
        dnc_inodes.sort_by_key(|i| i.ino);
        (pages, dnc_inodes)
    }

    /// Restore a checkpointed cache + inode set at failover.
    pub fn install_fs_state(&mut self, pages: &FsCacheCheckpoint, inodes: &[Inode]) {
        self.cache.install(pages);
        for inode in inodes {
            let mut i = inode.clone();
            i.dnc = false;
            self.inodes.insert(i.ino, i);
        }
    }

    /// Re-associate paths at restore (the path map travels with the mount
    /// image in real CRIU; we restore it explicitly).
    pub fn install_path(&mut self, path: &str, ino: Ino) {
        self.paths.insert(path.to_string(), ino);
    }

    /// All `(path, ino)` pairs, for checkpointing.
    pub fn paths(&self) -> impl Iterator<Item = (&String, &Ino)> {
        self.paths.iter()
    }

    /// Statistics for checkpoint cost accounting.
    pub fn stats(&self) -> VfsStats {
        VfsStats {
            inodes: self.inodes.len(),
            device_files: self
                .inodes
                .values()
                .filter(|i| i.kind == InodeKind::Device)
                .count(),
            mounts: self.mounts.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vfs() -> Vfs {
        Vfs::new(DevId(1))
    }

    #[test]
    fn create_lookup_unlink() {
        let mut v = vfs();
        let ino = v.create("/data/file1", InodeKind::Regular, 5).unwrap();
        assert_eq!(v.lookup("/data/file1").unwrap(), ino);
        assert_eq!(v.inode(ino).unwrap().mtime, 5);
        assert!(matches!(
            v.create("/data/file1", InodeKind::Regular, 6),
            Err(SimError::PathExists(_))
        ));
        v.unlink("/data/file1").unwrap();
        assert!(v.lookup("/data/file1").is_err());
        assert!(v.inode(ino).is_err());
    }

    #[test]
    fn pwrite_pread_roundtrip_across_pages() {
        let mut v = vfs();
        let ino = v.create("/f", InodeKind::Regular, 0).unwrap();
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        v.pwrite(ino, 100, &data, 1).unwrap();
        assert_eq!(v.inode(ino).unwrap().size, 10_100);
        let mut buf = vec![0u8; 10_000];
        let n = v.pread(ino, 100, &mut buf).unwrap();
        assert_eq!(n, 10_000);
        assert_eq!(buf, data);
    }

    #[test]
    fn pread_short_at_eof() {
        let mut v = vfs();
        let ino = v.create("/f", InodeKind::Regular, 0).unwrap();
        v.pwrite(ino, 0, b"12345", 0).unwrap();
        let mut buf = [0u8; 10];
        assert_eq!(v.pread(ino, 0, &mut buf).unwrap(), 5);
        assert_eq!(v.pread(ino, 5, &mut buf).unwrap(), 0);
        assert_eq!(v.pread(ino, 3, &mut buf).unwrap(), 2);
    }

    #[test]
    fn fsync_pushes_to_disk() {
        let mut v = vfs();
        let ino = v.create("/f", InodeKind::Regular, 0).unwrap();
        v.pwrite(ino, 0, b"persist", 0).unwrap();
        assert_eq!(v.disk.pending_writes(), 0, "no writeback before fsync");
        let n = v.fsync(ino).unwrap();
        assert_eq!(n, 1);
        assert_eq!(v.disk.pending_writes(), 1);
        assert_eq!(&v.disk.read_page(ino, 0).unwrap()[..7], b"persist");
    }

    #[test]
    fn read_after_cache_eviction_semantics() {
        // Data written + fsynced, then read back through a *fresh* cache:
        // contents must come from the device.
        let mut v = vfs();
        let ino = v.create("/f", InodeKind::Regular, 0).unwrap();
        v.pwrite(ino, 0, b"durable", 0).unwrap();
        v.fsync(ino).unwrap();
        v.cache = PageCache::new(); // simulate eviction
        let mut buf = [0u8; 7];
        assert_eq!(v.pread(ino, 0, &mut buf).unwrap(), 7);
        assert_eq!(&buf, b"durable");
    }

    #[test]
    fn fgetfc_pairs_pages_and_inodes() {
        let mut v = vfs();
        let a = v.create("/a", InodeKind::Regular, 0).unwrap();
        let b = v.create("/b", InodeKind::Regular, 0).unwrap();
        v.pwrite(a, 0, b"x", 1).unwrap();
        let (pages, inodes) = v.fgetfc();
        assert_eq!(pages.pages.len(), 1);
        // Root dir + /a + /b all have fresh (DNC) metadata.
        assert_eq!(inodes.len(), 3);
        // Second collection with only a chown on /b.
        v.chown(b, 1000, 1000, 2).unwrap();
        let (pages2, inodes2) = v.fgetfc();
        assert!(pages2.pages.is_empty());
        assert_eq!(inodes2.len(), 1);
        assert_eq!(inodes2[0].uid, 1000);
    }

    #[test]
    fn install_fs_state_restores() {
        let mut src = vfs();
        let ino = src.create("/kv", InodeKind::Regular, 0).unwrap();
        src.pwrite(ino, 0, b"value!", 3).unwrap();
        let (pages, inodes) = src.fgetfc();

        let mut dst = vfs();
        dst.install_fs_state(&pages, &inodes);
        dst.install_path("/kv", ino);
        let got = dst.lookup("/kv").unwrap();
        let mut buf = [0u8; 6];
        assert_eq!(dst.pread(got, 0, &mut buf).unwrap(), 6);
        assert_eq!(&buf, b"value!");
        // dst's own root (ino 1) is overwritten by the restored root, plus
        // the restored /kv inode.
        assert_eq!(dst.stats().inodes, 2);
    }

    #[test]
    fn mounts_and_stats() {
        let mut v = vfs();
        let m = v.mount("overlay", "/", "overlay");
        v.mount("proc", "/proc", "proc");
        v.create("/dev/null", InodeKind::Device, 0).unwrap();
        let s = v.stats();
        assert_eq!(s.mounts, 2);
        assert_eq!(s.device_files, 1);
        v.umount(m).unwrap();
        assert_eq!(v.mounts().len(), 1);
        assert!(v.umount(m).is_err());
    }
}
