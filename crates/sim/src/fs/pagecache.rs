//! Page cache with Dirty and DNC bits, and the `fgetfc` collection path.

use crate::block::BlockDevice;
use crate::ids::Ino;
use crate::PAGE_SIZE;
use std::collections::HashMap;

/// One cached file page.
#[derive(Clone)]
pub struct CachePage {
    /// Page contents.
    pub data: Box<[u8; PAGE_SIZE]>,
    /// Needs writeback to the block device.
    pub dirty: bool,
    /// Dirty but Not Checkpointed: modified since the last `fgetfc` (§III).
    pub dnc: bool,
}

impl std::fmt::Debug for CachePage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachePage")
            .field("dirty", &self.dirty)
            .field("dnc", &self.dnc)
            .finish()
    }
}

/// A checkpoint of the file-system cache state collected by `fgetfc`.
///
/// Contains exactly the page-cache entries and (by the caller's pairing)
/// inode-cache entries modified since the previous collection. Restored with
/// ordinary syscalls (`pwrite` for pages, `chown`/`truncate` for inodes).
#[derive(Debug, Default, Clone)]
pub struct FsCacheCheckpoint {
    /// `(inode, page index, contents, dirty-for-writeback)` tuples.
    pub pages: Vec<(Ino, u64, Box<[u8; PAGE_SIZE]>, bool)>,
}

impl FsCacheCheckpoint {
    /// Total byte size of checkpointed page contents.
    pub fn bytes(&self) -> u64 {
        (self.pages.len() * PAGE_SIZE) as u64
    }
}

/// The page cache of one kernel.
#[derive(Debug, Default)]
pub struct PageCache {
    entries: HashMap<(Ino, u64), CachePage>,
}

impl PageCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write `data` into the cache at `(ino, page_idx)` from `offset` within
    /// the page. Marks the entry Dirty + DNC. Returns true if the entry was
    /// newly created.
    pub fn write(&mut self, ino: Ino, page_idx: u64, offset: usize, data: &[u8]) -> bool {
        assert!(offset + data.len() <= PAGE_SIZE, "cache write exceeds page");
        let mut created = false;
        let e = self.entries.entry((ino, page_idx)).or_insert_with(|| {
            created = true;
            CachePage {
                data: Box::new([0u8; PAGE_SIZE]),
                dirty: false,
                dnc: false,
            }
        });
        e.data[offset..offset + data.len()].copy_from_slice(data);
        e.dirty = true;
        e.dnc = true;
        created
    }

    /// Read from the cache; on miss, fault the page in from `disk` (clean) and
    /// read from it. Returns false on a complete miss (no cache, no disk).
    pub fn read(
        &mut self,
        disk: &BlockDevice,
        ino: Ino,
        page_idx: u64,
        offset: usize,
        buf: &mut [u8],
    ) -> bool {
        assert!(offset + buf.len() <= PAGE_SIZE, "cache read exceeds page");
        if let Some(e) = self.entries.get(&(ino, page_idx)) {
            buf.copy_from_slice(&e.data[offset..offset + buf.len()]);
            return true;
        }
        if let Some(p) = disk.read_page(ino, page_idx) {
            buf.copy_from_slice(&p[offset..offset + buf.len()]);
            self.entries.insert(
                (ino, page_idx),
                CachePage {
                    data: Box::new(*p),
                    dirty: false,
                    dnc: false,
                },
            );
            return true;
        }
        buf.fill(0);
        false
    }

    /// Write back all dirty pages of `ino` (or all inodes if `None`) to the
    /// block device. Clears Dirty; leaves DNC untouched (the state still
    /// changed since the last checkpoint). Returns pages written.
    pub fn flush(&mut self, disk: &mut BlockDevice, ino: Option<Ino>) -> usize {
        let mut written = 0;
        for (&(i, idx), e) in self.entries.iter_mut() {
            if e.dirty && ino.is_none_or(|want| want == i) {
                disk.write_page(i, idx, e.data.clone());
                e.dirty = false;
                written += 1;
            }
        }
        written
    }

    /// The paper's `fgetfc` syscall: collect every DNC page and clear its DNC
    /// bit. Sorted for determinism.
    pub fn fgetfc(&mut self) -> FsCacheCheckpoint {
        let mut keys: Vec<(Ino, u64)> = self
            .entries
            .iter()
            .filter(|(_, e)| e.dnc)
            .map(|(&k, _)| k)
            .collect();
        keys.sort();
        let mut out = FsCacheCheckpoint::default();
        for k in keys {
            let e = self.entries.get_mut(&k).expect("key just collected");
            e.dnc = false;
            out.pages.push((k.0, k.1, e.data.clone(), e.dirty));
        }
        out
    }

    /// Install a checkpointed cache state at restore (pages arrive clean of
    /// DNC — they are now checkpointed by definition — but keep their
    /// writeback-dirty flag).
    pub fn install(&mut self, ckpt: &FsCacheCheckpoint) {
        for (ino, idx, data, dirty) in &ckpt.pages {
            self.entries.insert(
                (*ino, *idx),
                CachePage {
                    data: data.clone(),
                    dirty: *dirty,
                    dnc: false,
                },
            );
        }
    }

    /// Number of DNC entries currently pending collection.
    pub fn dnc_count(&self) -> usize {
        self.entries.values().filter(|e| e.dnc).count()
    }

    /// Number of dirty (needs-writeback) entries.
    pub fn dirty_count(&self) -> usize {
        self.entries.values().filter(|e| e.dirty).count()
    }

    /// Total cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Direct entry access for verification in tests.
    pub fn get(&self, ino: Ino, page_idx: u64) -> Option<&CachePage> {
        self.entries.get(&(ino, page_idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::DevId;

    #[test]
    fn write_then_read_hits_cache() {
        let mut pc = PageCache::new();
        let disk = BlockDevice::new(DevId(1));
        pc.write(Ino(1), 0, 100, b"hello");
        let mut buf = [0u8; 5];
        assert!(pc.read(&disk, Ino(1), 0, 100, &mut buf));
        assert_eq!(&buf, b"hello");
        assert_eq!(pc.dirty_count(), 1);
        assert_eq!(pc.dnc_count(), 1);
    }

    #[test]
    fn read_faults_in_from_disk_clean() {
        let mut pc = PageCache::new();
        let mut disk = BlockDevice::new(DevId(1));
        disk.write_page(Ino(1), 2, Box::new([9u8; PAGE_SIZE]));
        let mut buf = [0u8; 3];
        assert!(pc.read(&disk, Ino(1), 2, 0, &mut buf));
        assert_eq!(buf, [9, 9, 9]);
        assert_eq!(pc.dirty_count(), 0, "faulted-in page is clean");
        assert_eq!(pc.dnc_count(), 0, "faulted-in page needs no checkpoint");
        assert_eq!(pc.len(), 1);
    }

    #[test]
    fn complete_miss_reads_zeros() {
        let mut pc = PageCache::new();
        let disk = BlockDevice::new(DevId(1));
        let mut buf = [7u8; 4];
        assert!(!pc.read(&disk, Ino(5), 0, 0, &mut buf));
        assert_eq!(buf, [0; 4]);
    }

    #[test]
    fn flush_writes_back_and_clears_dirty_not_dnc() {
        let mut pc = PageCache::new();
        let mut disk = BlockDevice::new(DevId(1));
        pc.write(Ino(1), 0, 0, b"a");
        pc.write(Ino(2), 0, 0, b"b");
        let n = pc.flush(&mut disk, Some(Ino(1)));
        assert_eq!(n, 1);
        assert_eq!(disk.read_page(Ino(1), 0).unwrap()[0], b'a');
        assert_eq!(pc.dirty_count(), 1, "other inode still dirty");
        assert_eq!(pc.dnc_count(), 2, "flush does not clear DNC");
        assert_eq!(pc.flush(&mut disk, None), 1);
        assert_eq!(pc.dirty_count(), 0);
    }

    #[test]
    fn fgetfc_collects_exactly_dnc_and_clears() {
        let mut pc = PageCache::new();
        pc.write(Ino(1), 0, 0, b"x");
        pc.write(Ino(1), 3, 0, b"y");
        let c1 = pc.fgetfc();
        assert_eq!(c1.pages.len(), 2);
        assert_eq!(c1.bytes(), 2 * PAGE_SIZE as u64);
        assert_eq!(pc.dnc_count(), 0);

        // No changes -> empty collection (the whole point of DNC tracking).
        assert!(pc.fgetfc().pages.is_empty());

        // One page re-dirtied -> only that page collected.
        pc.write(Ino(1), 3, 10, b"z");
        let c2 = pc.fgetfc();
        assert_eq!(c2.pages.len(), 1);
        assert_eq!(c2.pages[0].1, 3);
    }

    #[test]
    fn fgetfc_is_sorted() {
        let mut pc = PageCache::new();
        pc.write(Ino(2), 5, 0, b"b");
        pc.write(Ino(1), 9, 0, b"a");
        pc.write(Ino(1), 2, 0, b"c");
        let c = pc.fgetfc();
        let keys: Vec<(Ino, u64)> = c.pages.iter().map(|(i, p, _, _)| (*i, *p)).collect();
        assert_eq!(keys, vec![(Ino(1), 2), (Ino(1), 9), (Ino(2), 5)]);
    }

    #[test]
    fn install_restores_contents_and_dirty_flag() {
        let mut pc = PageCache::new();
        pc.write(Ino(1), 0, 0, b"keep");
        let ckpt = pc.fgetfc();

        let mut restored = PageCache::new();
        restored.install(&ckpt);
        let disk = BlockDevice::new(DevId(9));
        let mut buf = [0u8; 4];
        assert!(restored.read(&disk, Ino(1), 0, 0, &mut buf));
        assert_eq!(&buf, b"keep");
        assert_eq!(
            restored.dirty_count(),
            1,
            "writeback obligation survives failover"
        );
        assert_eq!(restored.dnc_count(), 0);
    }
}
