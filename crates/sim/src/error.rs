//! Error type shared across the simulated kernel.

use crate::ids::{Fd, Ino, Pid, SockId};
use std::fmt;

/// Result alias used throughout the simulation.
pub type SimResult<T> = Result<T, SimError>;

/// Errors produced by simulated kernel operations.
///
/// These correspond loosely to errno values a real kernel would return; the
/// variants carry enough context to debug a failing replication run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Referenced process does not exist (ESRCH).
    NoSuchProcess(Pid),
    /// Referenced file descriptor is not open in the process (EBADF).
    BadFd(Pid, Fd),
    /// Referenced inode does not exist (ENOENT by number).
    NoSuchInode(Ino),
    /// Path lookup failed (ENOENT).
    NoSuchPath(String),
    /// Path already exists (EEXIST).
    PathExists(String),
    /// Referenced socket does not exist (EBADF/ENOTSOCK).
    NoSuchSocket(SockId),
    /// Socket operation invalid in its current state (EINVAL/EPIPE).
    InvalidSocketState {
        sock: SockId,
        op: &'static str,
        state: &'static str,
    },
    /// Address/port already bound (EADDRINUSE).
    AddrInUse(u16),
    /// Connection refused — no listener at the destination (ECONNREFUSED).
    ConnRefused,
    /// Connection was reset by the peer (ECONNRESET).
    ConnReset,
    /// Memory access outside any VMA (SIGSEGV).
    Segfault { addr: u64 },
    /// mmap/brk request invalid (ENOMEM/EINVAL).
    BadMapping(String),
    /// Operation requires the target to be frozen (or not frozen).
    FreezerState(&'static str),
    /// Socket repair-mode operation attempted without repair mode on (EPERM).
    NotInRepairMode(SockId),
    /// Checkpoint/restore image inconsistency detected.
    ImageCorrupt(String),
    /// Generic invalid-argument error (EINVAL).
    Invalid(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoSuchProcess(p) => write!(f, "no such process: {p}"),
            SimError::BadFd(p, fd) => write!(f, "bad fd {fd} in {p}"),
            SimError::NoSuchInode(i) => write!(f, "no such inode: {i}"),
            SimError::NoSuchPath(p) => write!(f, "no such path: {p}"),
            SimError::PathExists(p) => write!(f, "path exists: {p}"),
            SimError::NoSuchSocket(s) => write!(f, "no such socket: {s}"),
            SimError::InvalidSocketState { sock, op, state } => {
                write!(f, "socket {sock}: cannot {op} in state {state}")
            }
            SimError::AddrInUse(port) => write!(f, "port {port} already in use"),
            SimError::ConnRefused => write!(f, "connection refused"),
            SimError::ConnReset => write!(f, "connection reset by peer"),
            SimError::Segfault { addr } => write!(f, "segfault at {addr:#x}"),
            SimError::BadMapping(m) => write!(f, "bad mapping: {m}"),
            SimError::FreezerState(m) => write!(f, "freezer state error: {m}"),
            SimError::NotInRepairMode(s) => write!(f, "socket {s} not in repair mode"),
            SimError::ImageCorrupt(m) => write!(f, "checkpoint image corrupt: {m}"),
            SimError::Invalid(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SimError::NoSuchProcess(Pid(3)).to_string(),
            "no such process: pid:3"
        );
        assert_eq!(
            SimError::AddrInUse(80).to_string(),
            "port 80 already in use"
        );
        let e = SimError::InvalidSocketState {
            sock: SockId(1),
            op: "send",
            state: "Listen",
        };
        assert_eq!(e.to_string(), "socket sock:1: cannot send in state Listen");
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(SimError::ConnRefused);
        assert_eq!(e.to_string(), "connection refused");
    }
}
