//! The calibrated virtual-time cost model.
//!
//! Every simulated kernel operation charges a cost from this table to the
//! kernel's [`crate::time::CostMeter`]. Constants are sourced from the paper
//! wherever it states a number (cited inline below); the rest are set so the
//! reproduction lands within tolerance of the paper's tables and are marked
//! `calibrated`. The `bench` crate's `anchors` binary prints the paper-stated
//! anchors next to what the model produces.

use crate::time::Nanos;
use serde::{Deserialize, Serialize};

/// Convenience: microseconds.
const fn us(v: u64) -> Nanos {
    v * 1_000
}
/// Convenience: milliseconds.
const fn ms(v: u64) -> Nanos {
    v * 1_000_000
}

/// Latency/cost constants for the simulated kernel.
///
/// All fields are public so experiments can perturb individual costs
/// (sensitivity studies / ablations); [`CostModel::default`] is the calibrated
/// configuration used for every headline experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    // ------------------------------------------------------------------
    // Generic syscall surface
    // ------------------------------------------------------------------
    /// Base cost of entering and leaving any system call (`calibrated`,
    /// typical for the paper's Xeon-class hosts).
    pub syscall_base: Nanos,
    /// Cost of copying one byte between user and kernel space.
    pub copy_per_byte: Nanos,

    // ------------------------------------------------------------------
    // Memory subsystem
    // ------------------------------------------------------------------
    /// Soft-dirty write-protect fault on first write to a page after
    /// `clear_refs` (NiLiCon's runtime page-tracking overhead). `calibrated`
    /// so streamcluster's runtime component of the 31% total overhead is ~7%
    /// (Fig. 3 breakdown).
    pub soft_dirty_fault: Nanos,
    /// VM-exit + VM-entry pair for MC/KVM write-protect page tracking. The
    /// paper attributes MC's higher runtime overhead to this (§VII-C,
    /// "high overhead of VM exit and entry operations").
    pub vmexit_fault: Nanos,
    /// Scanning one page-table entry of `/proc/pid/pagemap` to find
    /// soft-dirty pages. Paper §VII-C: identifying dirty pages over a 49 K
    /// page footprint costs 1441 µs → ~29 ns per page.
    pub pagemap_scan_per_page: Nanos,
    /// Writing `/proc/pid/clear_refs` — per mapped page walked.
    pub clear_refs_per_page: Nanos,
    /// memcpy of one 4 KiB page (local copy into a staging buffer).
    /// §VII-C: copying 121 pages costs 263 µs → ~2.2 µs/page.
    pub page_copy: Nanos,
    /// Extra per-page cost when the parasite transfers page *contents over a
    /// pipe* (multiple syscalls per chunk) instead of shared memory.
    /// `calibrated` against Table I: the shared-memory optimization takes
    /// streamcluster from 37% to 31% (saves ~6 µs/page on ~300 pages).
    pub parasite_pipe_per_page: Nanos,
    /// Reading one VMA's entry from `/proc/pid/smaps` (formatted text,
    /// includes per-VMA stat generation).
    pub smaps_per_vma: Nanos,
    /// Per-page cost of the page statistics `smaps` generates that
    /// checkpointing does not need (§V cause (2)).
    pub smaps_per_page_stats: Nanos,
    /// Reading one VMA via the task-diag/netlink patch (binary format;
    /// §V-D deficiency (1) resolved).
    pub netlink_per_vma: Nanos,
    /// `stat` on one memory-mapped file (§V cause (1): dynamically linked
    /// libraries make this frequent).
    pub stat_per_file: Nanos,
    /// Materializing (restoring) one page's contents at restore time.
    pub page_restore: Nanos,
    /// Write-protecting one dirty page at a copy-on-write checkpoint pause:
    /// a PTE flag flip plus its share of the TLB shootdown, no data copy.
    /// `calibrated` ~15x below `page_copy` — deferring the copy out of the
    /// frozen window is the entire point of the COW mode (§VIII names
    /// shrinking the pause as future work; HyCoR defers the same way).
    pub cow_protect_per_page: Nanos,
    /// Write-protect fault taken when the container touches a
    /// still-protected page after resume: fault entry/exit (like
    /// `soft_dirty_fault`) plus an eager copy-before-write of the old
    /// contents into staging (one `page_copy`). Charged to the container's
    /// *runtime* overhead, not the stop phase.
    pub cow_fault: Nanos,
    /// Background copier draining one protected page into staging during
    /// the next execution phase: one `page_copy` plus un-protecting the PTE.
    pub cow_drain_per_page: Nanos,

    // ------------------------------------------------------------------
    // Freezer
    // ------------------------------------------------------------------
    /// Delivering the freezer virtual signal to one thread.
    pub freeze_signal_per_thread: Nanos,
    /// Latency for a thread *inside a system call* to notice the virtual
    /// signal and return (worst case per thread).
    pub freeze_syscall_interrupt: Nanos,
    /// Stock CRIU's fixed sleep between issuing virtual signals and checking
    /// thread state (§V-A: "sleeps for 100ms").
    pub freeze_stock_sleep: Nanos,
    /// Busy-poll iteration granularity for NiLiCon's optimized freeze
    /// (§V-A: average busy looping < 1 ms even for syscall-intensive loads).
    pub freeze_poll_interval: Nanos,
    /// Thawing one thread.
    pub thaw_per_thread: Nanos,

    // ------------------------------------------------------------------
    // In-kernel container state collection
    // ------------------------------------------------------------------
    /// Collecting all namespace state, uncached (§I: "collecting container
    /// namespace information may take up to 100 ms").
    pub ns_collect: Nanos,
    /// Collecting cgroup state, uncached. Together with namespaces, mounts,
    /// device files and mapped files this forms the paper's ~160 ms
    /// infrequently-modified set (§V-B, streamcluster).
    pub cgroup_collect: Nanos,
    /// Collecting the mount table, uncached.
    pub mounts_collect: Nanos,
    /// Collecting device-file state, uncached.
    pub devfiles_collect: Nanos,
    /// Per-thread state retrieval: registers, signal mask, timers, sched
    /// policy (§VII-C: 148 µs at 1 thread, ~linear to 4 ms at 32).
    pub thread_state: Nanos,
    /// Per-process base state retrieval: fd table walk, VMA bookkeeping,
    /// proc metadata (§VII-C lighttpd: 6.5 ms at 1 process).
    pub process_state_base: Nanos,
    /// Per-open-fd cost within a process dump.
    pub fd_state: Nanos,
    /// Dumping one TCP socket via repair mode (§VII-C: 1.2 ms for ~8
    /// sockets to 13 ms for 128 sockets → ~100 µs each).
    pub socket_repair_dump: Nanos,
    /// Restoring one TCP socket via repair mode.
    pub socket_repair_restore: Nanos,
    /// `fgetfc`: per DNC page-cache entry collected.
    pub fgetfc_per_page: Nanos,
    /// `fgetfc`: per DNC inode entry collected.
    pub fgetfc_per_inode: Nanos,
    /// Flushing the file-system cache to backing store, per dirty page
    /// (the CRIU-stock alternative NiLiCon avoids; §III: "up to hundreds of
    /// milliseconds" for disk-intensive applications).
    pub fs_flush_per_page: Nanos,

    // ------------------------------------------------------------------
    // Networking
    // ------------------------------------------------------------------
    /// Installing + removing firewall rules to block input (stock CRIU;
    /// §V-C: "adds a 7 ms delay during each epoch").
    pub firewall_block_cycle: Nanos,
    /// Plug/unplug of the buffering qdisc (NiLiCon; §V-C: 43 µs).
    pub plug_block_cycle: Nanos,
    /// TCP SYN retransmission penalty when connection-establishment packets
    /// are *dropped* by the firewall approach (§V-C: "up to three seconds");
    /// we charge the initial 1 s SYN retry timer per dropped SYN.
    pub syn_retry_penalty: Nanos,
    /// Per-packet cost of traversing the stack (either direction).
    pub packet_process: Nanos,
    /// Gratuitous ARP broadcast at failover (Table II: 28 ms including
    /// propagation/update).
    pub gratuitous_arp: Nanos,
    /// Default TCP retransmission timeout for a fresh socket (§V-E:
    /// "at least one second").
    pub tcp_rto_default: Nanos,
    /// Minimum RTO applied when the socket is restored in repair mode —
    /// the paper's 2-LOC kernel change (§V-E: 200 ms).
    pub tcp_rto_repair_min: Nanos,

    // ------------------------------------------------------------------
    // Replication transport (dedicated 10 GbE link, §VI)
    // ------------------------------------------------------------------
    /// One-way propagation + switching latency of the replication link.
    pub repl_link_latency: Nanos,
    /// Transfer cost per byte on the replication link (10 Gb/s → 0.8 ns/B).
    pub repl_link_per_byte_ns_x1000: u64,
    /// Per-message (send syscall + NIC doorbell) overhead on the link.
    pub repl_msg_overhead: Nanos,
    /// Client-facing link: per-byte cost (1 Gb/s → 8 ns/B).
    pub client_link_per_byte_ns_x1000: u64,
    /// Client-facing link one-way latency.
    pub client_link_latency: Nanos,

    // ------------------------------------------------------------------
    // Backup-side processing
    // ------------------------------------------------------------------
    /// Backup CPU cost to receive + buffer one byte of checkpoint state.
    pub backup_recv_per_byte_ns_x1000: u64,
    /// Backup CPU cost per received message/chunk (read syscall). Table V
    /// explains Node's high backup utilization by fine-grained arrival of
    /// socket state — per-chunk costs dominate for small chunks.
    pub backup_recv_per_msg: Nanos,
    /// Committing one page into the backup's radix-tree store.
    pub radix_insert: Nanos,
    /// Base cost of one linked-list directory probe in stock CRIU's
    /// incremental-image store (per previous checkpoint in the chain,
    /// per page; §V-A).
    pub list_probe_per_ckpt: Nanos,
    /// Primary CPU cost to delta-encode one dirty page against the shadow
    /// copy of the last shipped epoch (word-level XOR scan of 4 KiB;
    /// HyCoR-style wire reduction). Charged inside the stop phase.
    pub delta_encode_per_page: Nanos,
    /// Backup CPU cost to apply one delta-encoded page against its stored
    /// base at commit time (decode side of `delta_encode_per_page`).
    pub delta_apply_per_page: Nanos,
    /// Primary CPU cost to erasure-code one dirty page into its n shard
    /// fragments (GF(2⁸) systematic Reed–Solomon; the `placement`
    /// extension). Charged on the ack path, after the container resumes.
    pub shard_encode_per_page: Nanos,
    /// CPU cost to reconstruct one page from k shard fragments (Gaussian
    /// decode; charged during failover reconstruction and coded repair).
    pub shard_decode_per_page: Nanos,
    /// Primary CPU cost to append one nondeterministic event to the hybrid
    /// replay log (HyCoR §"record/replay": an in-memory ring append — the
    /// recording overhead HyCoR measures at a few percent of runtime).
    pub log_append_per_event: Nanos,
    /// Backup CPU cost to apply one logged event during failover replay
    /// (decode + dispatch into the re-executing container).
    pub log_replay_per_event: Nanos,

    // ------------------------------------------------------------------
    // Restore / recovery
    // ------------------------------------------------------------------
    /// Fixed restore overhead: fork CRIU, parse images, recreate the
    /// container skeleton (namespaces, cgroups, mounts). `calibrated`
    /// against Table II (Net restore = 218 ms with ~trivial memory).
    pub restore_base: Nanos,
    /// Recreating one process (fork + basic setup) at restore.
    pub restore_per_process: Nanos,
    /// Recreating one thread at restore.
    pub restore_per_thread: Nanos,
    /// Restoring one fd at restore.
    pub restore_per_fd: Nanos,
    /// Writing DRBD-buffered disk pages at failover, per page.
    pub restore_disk_per_page: Nanos,
    /// Miscellaneous recovery actions not in restore/ARP/TCP: reconnecting
    /// the bridge, detector bookkeeping (Table II "Others": 7 ms).
    pub recovery_misc: Nanos,

    // ------------------------------------------------------------------
    // MC / KVM baseline (whole-VM replication, §VI-§VII)
    // ------------------------------------------------------------------
    /// Pausing + resuming the VM around a micro-checkpoint (vCPU kick,
    /// quiesce, resume). `calibrated` against Table III's MC stop floor
    /// (~2.4 ms for swaptions' tiny dirty set).
    pub vm_pause_resume: Nanos,
    /// Hypervisor-side copy of one dirty guest page (direct access — no
    /// parasite); cheaper than the container path. `calibrated` against
    /// Table III (MC Redis: 6.2 K pages in a 9.3 ms stop).
    pub hv_page_copy: Nanos,
    /// Scanning one page of the KVM dirty log/bitmap.
    pub hv_dirty_log_per_page: Nanos,
    /// Device + vCPU state shipped per MC epoch, bytes.
    pub vm_device_state_bytes: u64,
    /// Resuming the ready-to-go backup VM at failover (Remus §II-A:
    /// "minimal delay").
    pub vm_resume_at_failover: Nanos,
    /// Reading one entry of the hardware page-modification log (PML
    /// extension; Phantasy §VIII direction).
    pub pml_drain_per_page: Nanos,

    // ------------------------------------------------------------------
    // Proxy (stock CRIU state-transfer intermediary, §V-A)
    // ------------------------------------------------------------------
    /// Extra per-byte cost when state flows through the proxy processes
    /// (one extra copy on each host).
    pub proxy_per_byte_ns_x1000: u64,
    /// Extra per-message cost through the proxies.
    pub proxy_per_msg: Nanos,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            syscall_base: 300,
            copy_per_byte: 1, // ~1 GB/s effective for small copies incl. overheads

            soft_dirty_fault: 2_500,
            vmexit_fault: us(5),
            pagemap_scan_per_page: 29,
            clear_refs_per_page: 8,
            page_copy: 2_170, // 263 µs / 121 pages (§VII-C)
            parasite_pipe_per_page: us(6),
            smaps_per_vma: us(30),
            smaps_per_page_stats: 70,
            netlink_per_vma: us(2),
            stat_per_file: us(25),
            page_restore: 3_500,
            cow_protect_per_page: 150,
            cow_fault: 4_700, // soft_dirty_fault + page_copy, rounded
            cow_drain_per_page: 2_300, // page_copy + PTE un-protect

            freeze_signal_per_thread: us(15),
            freeze_syscall_interrupt: us(60),
            freeze_stock_sleep: ms(100),
            freeze_poll_interval: us(50),
            thaw_per_thread: us(10),

            ns_collect: ms(100),    // §I: "up to 100ms"
            cgroup_collect: ms(25), // remainder of the ~160 ms set (§V-B)
            mounts_collect: ms(20),
            devfiles_collect: ms(10),
            thread_state: us(130), // §VII-C: 148 µs @1 thread → 4 ms @32
            process_state_base: us(2600),
            fd_state: us(18),
            socket_repair_dump: us(100), // §VII-C: 13 ms @128 sockets
            socket_repair_restore: us(140),
            fgetfc_per_page: 900,
            fgetfc_per_inode: us(3),
            fs_flush_per_page: us(45), // §III: flush = 100s of ms for disk-heavy apps

            firewall_block_cycle: ms(7), // §V-C
            plug_block_cycle: us(43),    // §V-C
            syn_retry_penalty: 1_000 * ms(1),
            packet_process: us(4),
            gratuitous_arp: ms(28),         // Table II
            tcp_rto_default: 1_000 * ms(1), // §V-E: "at least one second"
            tcp_rto_repair_min: ms(200),    // §V-E

            repl_link_latency: us(15),
            repl_link_per_byte_ns_x1000: 800, // 0.8 ns/B = 10 Gb/s
            repl_msg_overhead: us(4),
            client_link_per_byte_ns_x1000: 8_000, // 8 ns/B = 1 Gb/s
            client_link_latency: us(80),

            backup_recv_per_byte_ns_x1000: 900,
            backup_recv_per_msg: us(20),
            radix_insert: 450,
            list_probe_per_ckpt: 4_000, // fs directory probe (images live in files)
            delta_encode_per_page: 650, // one 4 KiB XOR scan ≈ ⅓ of a page copy
            delta_apply_per_page: 500,
            shard_encode_per_page: 900, // GF(2⁸) table-lookup pass over 4 KiB
            shard_decode_per_page: 1100, // matrix solve + k-way combine
            log_append_per_event: 120,  // in-memory ring append + hash
            log_replay_per_event: 400,  // decode + dispatch at replay

            restore_base: ms(190),
            restore_per_process: ms(9),
            restore_per_thread: us(450),
            restore_per_fd: us(60),
            restore_disk_per_page: us(9),
            recovery_misc: ms(7), // Table II "Others"

            vm_pause_resume: ms(2),
            hv_page_copy: 1_150,
            hv_dirty_log_per_page: 5,
            vm_device_state_bytes: 80 * 1024,
            vm_resume_at_failover: ms(60),
            pml_drain_per_page: 120,

            proxy_per_byte_ns_x1000: 700,
            proxy_per_msg: us(10),
        }
    }
}

impl CostModel {
    /// Wire time for `bytes` on the replication link (excluding latency).
    #[inline]
    pub fn repl_wire(&self, bytes: u64) -> Nanos {
        bytes * self.repl_link_per_byte_ns_x1000 / 1_000
    }

    /// Wire time for `bytes` on the client-facing link.
    #[inline]
    pub fn client_wire(&self, bytes: u64) -> Nanos {
        bytes * self.client_link_per_byte_ns_x1000 / 1_000
    }

    /// Backup CPU time to receive `bytes` split into `msgs` chunks.
    #[inline]
    pub fn backup_recv(&self, bytes: u64, msgs: u64) -> Nanos {
        bytes * self.backup_recv_per_byte_ns_x1000 / 1_000 + msgs * self.backup_recv_per_msg
    }

    /// Extra cost of routing `bytes` in `msgs` chunks through the stock
    /// CRIU proxy pair.
    #[inline]
    pub fn proxy_overhead(&self, bytes: u64, msgs: u64) -> Nanos {
        bytes * self.proxy_per_byte_ns_x1000 / 1_000 + msgs * self.proxy_per_msg
    }

    /// The infrequently-modified in-kernel state collection cost, uncached
    /// (namespaces + cgroups + mounts + device files; mapped-file stats are
    /// charged per file elsewhere). §V-B's ~160 ms for streamcluster is this
    /// plus the mapped-file stats.
    #[inline]
    pub fn infrequent_state_collect(&self) -> Nanos {
        self.ns_collect + self.cgroup_collect + self.mounts_collect + self.devfiles_collect
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{MICROSECOND, MILLISECOND};

    #[test]
    fn paper_stated_anchors_hold() {
        let c = CostModel::default();
        // §V-C: firewall 7 ms vs plug 43 µs.
        assert_eq!(c.firewall_block_cycle, 7 * MILLISECOND);
        assert_eq!(c.plug_block_cycle, 43 * MICROSECOND);
        // §I: namespace collection up to 100 ms.
        assert_eq!(c.ns_collect, 100 * MILLISECOND);
        // §V-E: RTO 1 s default, 200 ms repair minimum.
        assert_eq!(c.tcp_rto_default, 1_000 * MILLISECOND);
        assert_eq!(c.tcp_rto_repair_min, 200 * MILLISECOND);
        // §VII-C: pagemap scan ≈ 1441 µs over 49 K pages.
        let scan = 49_000 * c.pagemap_scan_per_page;
        assert!((1_200 * MICROSECOND..1_700 * MICROSECOND).contains(&scan));
        // §VII-C: copying 121 pages ≈ 263 µs.
        let copy = 121 * c.page_copy;
        assert!((230 * MICROSECOND..300 * MICROSECOND).contains(&copy));
        // §V-B: infrequently-modified set ≈ 160 ms incl. mapped-file stats;
        // the fixed components alone are 100+25+20+10 = 155 ms.
        assert_eq!(c.infrequent_state_collect(), 155 * MILLISECOND);
        // §VII-C: 128 sockets ≈ 13 ms.
        assert!((10 * MILLISECOND..16 * MILLISECOND).contains(&(128 * c.socket_repair_dump)));
    }

    #[test]
    fn cow_constants_are_consistent() {
        let c = CostModel::default();
        assert!(
            c.cow_protect_per_page * 10 < c.page_copy,
            "protecting must be far cheaper than the copy it defers"
        );
        assert!(
            c.cow_fault >= c.soft_dirty_fault + c.page_copy,
            "a COW fault is a tracking fault plus an eager page copy"
        );
        assert!(c.cow_drain_per_page >= c.page_copy);
    }

    #[test]
    fn wire_math() {
        let c = CostModel::default();
        // 10 Gb/s: 1.25 GB/s → 1 MiB in ~0.84 ms.
        let t = c.repl_wire(1024 * 1024);
        assert!((700 * MICROSECOND..1_000 * MICROSECOND).contains(&t));
        // 1 Gb/s is 10x slower.
        assert_eq!(c.client_wire(1000), 10 * c.repl_wire(1000));
    }

    #[test]
    fn helper_compositions() {
        let c = CostModel::default();
        assert_eq!(
            c.backup_recv(1000, 2),
            1000 * c.backup_recv_per_byte_ns_x1000 / 1000 + 2 * c.backup_recv_per_msg
        );
        assert!(c.proxy_overhead(4096, 1) > 0);
    }
}
