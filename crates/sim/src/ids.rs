//! Strongly-typed identifiers for kernel objects.
//!
//! Every kernel object is referred to by a small copyable ID. Using newtypes
//! (rather than bare integers) prevents the classic bug class of passing a pid
//! where a socket id was expected — important in a crate whose entire API is
//! handle-based.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub $inner);

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl $name {
            /// Raw integer value of this identifier.
            #[inline]
            pub fn raw(self) -> $inner {
                self.0
            }
        }
    };
}

id_type!(
    /// Process identifier.
    Pid, u32, "pid:");
id_type!(
    /// Thread identifier (a thread belongs to exactly one process).
    Tid, u32, "tid:");
id_type!(
    /// File-descriptor number within one process's fd table.
    Fd, i32, "fd:");
id_type!(
    /// Inode number, unique within one kernel instance.
    Ino, u64, "ino:");
id_type!(
    /// Socket identifier, unique within one kernel instance.
    SockId, u32, "sock:");
id_type!(
    /// Address-space identifier (an `mm_struct`); threads of one process share one.
    AsId, u32, "mm:");
id_type!(
    /// Control-group identifier.
    CgroupId, u32, "cg:");
id_type!(
    /// Namespace identifier.
    NsId, u32, "ns:");
id_type!(
    /// Host identifier within a [`crate::cluster::Cluster`].
    HostId, u32, "host:");
id_type!(
    /// Block-device identifier.
    DevId, u32, "dev:");
id_type!(
    /// Mount identifier within a mount namespace.
    MountId, u32, "mnt:");

/// A TCP/IP endpoint in the simulated network: (host address, port).
///
/// Addresses are flat `u32`s — the simulation does not model subnetting; a
/// host's address is assigned by the cluster, and the virtual bridge routes on
/// exact address match.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Endpoint {
    /// Flat network address of the owning stack.
    pub addr: u32,
    /// TCP port.
    pub port: u16,
}

impl Endpoint {
    /// Construct an endpoint.
    pub fn new(addr: u32, port: u16) -> Self {
        Endpoint { addr, port }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.addr, self.port)
    }
}

/// Allocates monotonically increasing raw IDs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IdAlloc {
    next: u64,
}

impl IdAlloc {
    /// New allocator starting at `first`.
    pub fn starting_at(first: u64) -> Self {
        IdAlloc { next: first }
    }

    /// Hand out the next raw id.
    pub fn alloc(&mut self) -> u64 {
        let v = self.next;
        self.next += 1;
        v
    }
}

impl Default for IdAlloc {
    fn default() -> Self {
        IdAlloc::starting_at(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types_and_format() {
        let p = Pid(7);
        let t = Tid(7);
        assert_eq!(format!("{p:?}"), "pid:7");
        assert_eq!(format!("{t}"), "tid:7");
        assert_eq!(p.raw(), 7);
    }

    #[test]
    fn id_alloc_monotonic() {
        let mut a = IdAlloc::default();
        assert_eq!(a.alloc(), 1);
        assert_eq!(a.alloc(), 2);
        let mut b = IdAlloc::starting_at(100);
        assert_eq!(b.alloc(), 100);
    }

    #[test]
    fn endpoint_display() {
        assert_eq!(Endpoint::new(10, 6379).to_string(), "10:6379");
    }

    #[test]
    fn endpoint_ordering_is_total() {
        let a = Endpoint::new(1, 2);
        let b = Endpoint::new(1, 3);
        let c = Endpoint::new(2, 0);
        assert!(a < b && b < c);
    }
}
