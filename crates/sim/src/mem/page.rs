//! A physical page frame with real contents and tracking bits.

use crate::PAGE_SIZE;
use std::rc::Rc;

/// A refcounted, immutable 4 KiB page buffer.
///
/// Checkpoint pages travel the dump → encode → transfer → ingest path as
/// `PageBuf`s: one copy is made when the page is captured (the frame is still
/// mutable), after which every stage — delta shadow, placement striping,
/// backup stores — shares the same allocation. The simulation is
/// single-threaded, so `Rc` suffices.
pub type PageBuf = Rc<[u8; PAGE_SIZE]>;

thread_local! {
    static ZERO_PAGE: PageBuf = Rc::new([0u8; PAGE_SIZE]);
}

/// The shared all-zeros page. Untouched anonymous pages and zero-encoded
/// deltas resolve to this single allocation instead of a fresh 4 KiB each.
pub fn zero_page() -> PageBuf {
    ZERO_PAGE.with(Rc::clone)
}

/// One 4 KiB page frame.
///
/// Frames materialize lazily on first write; a virtual page with no frame
/// reads as zeros, exactly like an untouched anonymous mapping.
#[derive(Clone)]
pub struct PageFrame {
    data: Box<[u8; PAGE_SIZE]>,
    /// Soft-dirty bit: set on write, cleared by `clear_refs`.
    pub soft_dirty: bool,
    /// Tracking armed: the *next* write to this frame takes a tracking fault.
    pub tracked_clean: bool,
}

impl std::fmt::Debug for PageFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageFrame")
            .field("soft_dirty", &self.soft_dirty)
            .field("tracked_clean", &self.tracked_clean)
            .field("first_bytes", &&self.data[..8])
            .finish()
    }
}

impl Default for PageFrame {
    fn default() -> Self {
        PageFrame {
            data: Box::new([0u8; PAGE_SIZE]),
            soft_dirty: false,
            tracked_clean: false,
        }
    }
}

impl PageFrame {
    /// A zeroed frame.
    pub fn zeroed() -> Self {
        Self::default()
    }

    /// A frame initialized with `data` starting at offset 0 (rest zeroed).
    pub fn from_bytes(data: &[u8]) -> Self {
        let mut f = Self::default();
        let n = data.len().min(PAGE_SIZE);
        f.data[..n].copy_from_slice(&data[..n]);
        f
    }

    /// Read-only view of the page contents.
    #[inline]
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Mutable view of the page contents. Callers are responsible for dirty
    /// accounting — use [`crate::mem::AddressSpace`] APIs in normal paths.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }

    /// Copy the page out into an immutable shared buffer. This is the single
    /// copy on the checkpoint path; everything downstream clones the `Rc`.
    pub fn snapshot(&self) -> PageBuf {
        Rc::new(*self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_from_bytes() {
        let z = PageFrame::zeroed();
        assert!(z.bytes().iter().all(|&b| b == 0));
        let f = PageFrame::from_bytes(&[1, 2, 3]);
        assert_eq!(&f.bytes()[..4], &[1, 2, 3, 0]);
        assert!(!f.soft_dirty);
    }

    #[test]
    fn from_bytes_truncates_oversized_input() {
        let big = vec![0xAB; PAGE_SIZE + 100];
        let f = PageFrame::from_bytes(&big);
        assert_eq!(f.bytes()[PAGE_SIZE - 1], 0xAB);
    }

    #[test]
    fn snapshot_is_independent() {
        let mut f = PageFrame::from_bytes(b"hello");
        let snap = f.snapshot();
        f.bytes_mut()[0] = b'X';
        assert_eq!(&snap[..5], b"hello");
        assert_eq!(f.bytes()[0], b'X');
    }
}
