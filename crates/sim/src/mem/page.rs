//! A physical page frame with real contents and tracking bits.

use crate::PAGE_SIZE;

/// One 4 KiB page frame.
///
/// Frames materialize lazily on first write; a virtual page with no frame
/// reads as zeros, exactly like an untouched anonymous mapping.
#[derive(Clone)]
pub struct PageFrame {
    data: Box<[u8; PAGE_SIZE]>,
    /// Soft-dirty bit: set on write, cleared by `clear_refs`.
    pub soft_dirty: bool,
    /// Tracking armed: the *next* write to this frame takes a tracking fault.
    pub tracked_clean: bool,
}

impl std::fmt::Debug for PageFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageFrame")
            .field("soft_dirty", &self.soft_dirty)
            .field("tracked_clean", &self.tracked_clean)
            .field("first_bytes", &&self.data[..8])
            .finish()
    }
}

impl Default for PageFrame {
    fn default() -> Self {
        PageFrame {
            data: Box::new([0u8; PAGE_SIZE]),
            soft_dirty: false,
            tracked_clean: false,
        }
    }
}

impl PageFrame {
    /// A zeroed frame.
    pub fn zeroed() -> Self {
        Self::default()
    }

    /// A frame initialized with `data` starting at offset 0 (rest zeroed).
    pub fn from_bytes(data: &[u8]) -> Self {
        let mut f = Self::default();
        let n = data.len().min(PAGE_SIZE);
        f.data[..n].copy_from_slice(&data[..n]);
        f
    }

    /// Read-only view of the page contents.
    #[inline]
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Mutable view of the page contents. Callers are responsible for dirty
    /// accounting — use [`crate::mem::AddressSpace`] APIs in normal paths.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }

    /// Copy the page out (e.g. into a checkpoint staging buffer).
    pub fn snapshot(&self) -> Box<[u8; PAGE_SIZE]> {
        self.data.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_from_bytes() {
        let z = PageFrame::zeroed();
        assert!(z.bytes().iter().all(|&b| b == 0));
        let f = PageFrame::from_bytes(&[1, 2, 3]);
        assert_eq!(&f.bytes()[..4], &[1, 2, 3, 0]);
        assert!(!f.soft_dirty);
    }

    #[test]
    fn from_bytes_truncates_oversized_input() {
        let big = vec![0xAB; PAGE_SIZE + 100];
        let f = PageFrame::from_bytes(&big);
        assert_eq!(f.bytes()[PAGE_SIZE - 1], 0xAB);
    }

    #[test]
    fn snapshot_is_independent() {
        let mut f = PageFrame::from_bytes(b"hello");
        let snap = f.snapshot();
        f.bytes_mut()[0] = b'X';
        assert_eq!(&snap[..5], b"hello");
        assert_eq!(f.bytes()[0], b'X');
    }
}
