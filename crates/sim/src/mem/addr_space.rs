//! Address spaces: the per-process `mm_struct`.

use super::page::{zero_page, PageBuf, PageFrame};
use super::vma::{MappedFile, Perms, Vma, VmaKind};
use super::TrackingMode;
use crate::error::{SimError, SimResult};
use crate::PAGE_SIZE;
use std::collections::{BTreeMap, BTreeSet, HashMap};

const PS: u64 = PAGE_SIZE as u64;

/// Outcome of a memory write: how many tracking faults it took.
///
/// The kernel converts fault counts into charged time using the active
/// [`TrackingMode`]'s per-fault cost; the replication runtime attributes that
/// time to the container's *runtime overhead* component (Fig. 3 breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Pages that took a first-write tracking fault during this write.
    pub tracking_faults: u32,
    /// Pages newly materialized (previously unbacked).
    pub pages_materialized: u32,
    /// Pages that were still COW-protected by a deferred checkpoint and
    /// took a write-protect fault: their old contents were eagerly copied
    /// into the staging area before this write landed.
    pub cow_faults: u32,
}

impl WriteOutcome {
    fn absorb(&mut self, other: WriteOutcome) {
        self.tracking_faults += other.tracking_faults;
        self.pages_materialized += other.pages_materialized;
        self.cow_faults += other.cow_faults;
    }
}

/// A simulated address space: VMAs + page table.
#[derive(Debug, Default)]
pub struct AddressSpace {
    /// VMAs keyed by start address.
    vmas: BTreeMap<u64, Vma>,
    /// Materialized frames keyed by virtual page number.
    frames: HashMap<u64, PageFrame>,
    /// Current dirty-tracking mode.
    tracking: TrackingMode,
    /// Current heap break (end of the heap VMA), if a heap exists.
    brk: Option<u64>,
    /// Pages write-protected by a deferred (copy-on-write) checkpoint whose
    /// checkpoint-time contents have not been copied out yet.
    cow_protected: BTreeSet<u64>,
    /// Checkpoint-time contents of protected pages that took a write fault
    /// before the background copier reached them (copy-before-write).
    cow_staged: Vec<(u64, PageBuf)>,
    /// COW write-protect faults taken since the last [`Self::take_cow_faults`].
    cow_faults: u64,
}

impl AddressSpace {
    /// Empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    // ------------------------------------------------------------------
    // Mapping management
    // ------------------------------------------------------------------

    /// Map a VMA. Addresses and length must be page aligned and must not
    /// overlap an existing VMA.
    pub fn mmap(&mut self, vma: Vma) -> SimResult<()> {
        if !vma.start.is_multiple_of(PS) || !vma.len.is_multiple_of(PS) || vma.len == 0 {
            return Err(SimError::BadMapping(format!(
                "unaligned or empty mapping {:#x}+{:#x}",
                vma.start, vma.len
            )));
        }
        if self.overlaps(vma.start, vma.len) {
            return Err(SimError::BadMapping(format!(
                "mapping {:#x}+{:#x} overlaps an existing VMA",
                vma.start, vma.len
            )));
        }
        if vma.is_heap {
            self.brk = Some(vma.end());
        }
        self.vmas.insert(vma.start, vma);
        Ok(())
    }

    /// Convenience: map an anonymous RW region.
    pub fn mmap_anon(&mut self, start: u64, len: u64) -> SimResult<()> {
        self.mmap(Vma {
            start,
            len,
            perms: Perms::RW,
            kind: VmaKind::Anon,
            is_heap: false,
            is_stack: false,
        })
    }

    /// Convenience: map a file-backed region.
    pub fn mmap_file(
        &mut self,
        start: u64,
        len: u64,
        mf: MappedFile,
        perms: Perms,
    ) -> SimResult<()> {
        self.mmap(Vma {
            start,
            len,
            perms,
            kind: VmaKind::File(mf),
            is_heap: false,
            is_stack: false,
        })
    }

    /// Unmap the VMA starting at `start`, dropping its frames.
    pub fn munmap(&mut self, start: u64) -> SimResult<Vma> {
        let vma = self
            .vmas
            .remove(&start)
            .ok_or_else(|| SimError::BadMapping(format!("no VMA at {start:#x}")))?;
        let first = vma.first_vpn();
        for vpn in first..first + vma.pages() {
            self.frames.remove(&vpn);
        }
        if vma.is_heap {
            self.brk = None;
        }
        Ok(vma)
    }

    /// Grow (or shrink) the heap VMA to end at `new_brk` (page aligned up).
    /// Returns the new break. Requires a heap VMA to exist.
    pub fn brk(&mut self, new_brk: u64) -> SimResult<u64> {
        let heap_start = self
            .vmas
            .values()
            .find(|v| v.is_heap)
            .map(|v| v.start)
            .ok_or_else(|| SimError::BadMapping("no heap VMA".into()))?;
        let aligned = new_brk.div_ceil(PS) * PS;
        if aligned <= heap_start {
            return Err(SimError::BadMapping("brk below heap start".into()));
        }
        // Reject if growth would collide with the next VMA.
        if let Some((&next_start, _)) = self.vmas.range(heap_start + 1..).next() {
            if aligned > next_start {
                return Err(SimError::BadMapping("brk collides with next VMA".into()));
            }
        }
        let heap = self.vmas.get_mut(&heap_start).expect("heap vma exists");
        let old_end = heap.end();
        heap.len = aligned - heap_start;
        // Drop frames beyond a shrunken break.
        if aligned < old_end {
            for vpn in aligned / PS..old_end / PS {
                self.frames.remove(&vpn);
            }
        }
        self.brk = Some(aligned);
        Ok(aligned)
    }

    /// Current heap break.
    pub fn current_brk(&self) -> Option<u64> {
        self.brk
    }

    fn overlaps(&self, start: u64, len: u64) -> bool {
        let end = start + len;
        // Predecessor VMA may extend into us; successor may start before our end.
        if let Some((_, prev)) = self.vmas.range(..=start).next_back() {
            if prev.end() > start {
                return true;
            }
        }
        self.vmas.range(start..end).next().is_some()
    }

    /// The VMA containing `addr`.
    pub fn vma_at(&self, addr: u64) -> Option<&Vma> {
        self.vmas
            .range(..=addr)
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.contains(addr))
    }

    /// Iterate over all VMAs in address order.
    pub fn vmas(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.values()
    }

    /// Number of VMAs.
    pub fn vma_count(&self) -> usize {
        self.vmas.len()
    }

    /// Number of mapped file VMAs (each costs one `stat` in a stock dump).
    pub fn mapped_file_count(&self) -> usize {
        self.vmas
            .values()
            .filter(|v| matches!(v.kind, VmaKind::File(_)))
            .count()
    }

    /// Total pages spanned by all VMAs (the pagemap scan length).
    pub fn mapped_pages(&self) -> u64 {
        self.vmas.values().map(Vma::pages).sum()
    }

    /// Number of materialized (resident) frames.
    pub fn resident_pages(&self) -> usize {
        self.frames.len()
    }

    // ------------------------------------------------------------------
    // Access
    // ------------------------------------------------------------------

    /// Read `buf.len()` bytes at `addr`. Unmaterialized pages read as zeros.
    pub fn read(&self, addr: u64, buf: &mut [u8]) -> SimResult<()> {
        self.check_range(addr, buf.len() as u64, false)?;
        let mut off = 0usize;
        let mut cur = addr;
        while off < buf.len() {
            let vpn = cur / PS;
            let in_page = (cur % PS) as usize;
            let n = (PAGE_SIZE - in_page).min(buf.len() - off);
            match self.frames.get(&vpn) {
                Some(f) => buf[off..off + n].copy_from_slice(&f.bytes()[in_page..in_page + n]),
                None => buf[off..off + n].fill(0),
            }
            off += n;
            cur += n as u64;
        }
        Ok(())
    }

    /// Write `data` at `addr`, materializing frames, setting soft-dirty bits,
    /// and counting tracking faults per the active mode.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> SimResult<WriteOutcome> {
        self.check_range(addr, data.len() as u64, true)?;
        let mut out = WriteOutcome::default();
        let mut off = 0usize;
        let mut cur = addr;
        while off < data.len() {
            let vpn = cur / PS;
            let in_page = (cur % PS) as usize;
            let n = (PAGE_SIZE - in_page).min(data.len() - off);
            out.absorb(self.touch_page(vpn));
            let f = self.frames.get_mut(&vpn).expect("touch_page materialized");
            f.bytes_mut()[in_page..in_page + n].copy_from_slice(&data[off..off + n]);
            off += n;
            cur += n as u64;
        }
        Ok(out)
    }

    /// Mark a page written without supplying contents (used by workloads that
    /// model "dirty a page" without meaningful data — e.g. scratch buffers).
    pub fn touch(&mut self, addr: u64) -> SimResult<WriteOutcome> {
        self.check_range(addr, 1, true)?;
        Ok(self.touch_page(addr / PS))
    }

    fn touch_page(&mut self, vpn: u64) -> WriteOutcome {
        let mut out = WriteOutcome::default();
        // Copy-before-write: a write racing the background copier must stage
        // the checkpoint-time contents *before* the new bytes land (callers
        // copy bytes only after `touch_page` returns, so this snapshot is
        // exactly what the frozen container held).
        if self.cow_protected.remove(&vpn) {
            out.cow_faults += 1;
            self.cow_faults += 1;
            let snap = match self.frames.get(&vpn) {
                Some(f) => f.snapshot(),
                None => zero_page(),
            };
            self.cow_staged.push((vpn, snap));
        }
        let frame = self.frames.entry(vpn).or_insert_with(|| {
            out.pages_materialized += 1;
            let mut f = PageFrame::zeroed();
            // A fresh frame under tracking counts as armed: its first write
            // (this one) faults.
            f.tracked_clean = true;
            f
        });
        let fault = match self.tracking {
            TrackingMode::None | TrackingMode::HardwareLog => false,
            TrackingMode::SoftDirty | TrackingMode::WriteProtect => frame.tracked_clean,
        };
        if fault {
            out.tracking_faults += 1;
        }
        frame.tracked_clean = false;
        frame.soft_dirty = true;
        out
    }

    fn check_range(&self, addr: u64, len: u64, need_write: bool) -> SimResult<()> {
        if len == 0 {
            return Ok(());
        }
        let mut cur = addr;
        let end = addr + len;
        while cur < end {
            let vma = self.vma_at(cur).ok_or(SimError::Segfault { addr: cur })?;
            if need_write && !vma.perms.w {
                return Err(SimError::Segfault { addr: cur });
            }
            cur = vma.end();
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Dirty tracking
    // ------------------------------------------------------------------

    /// Set the tracking mode (soft-dirty for NiLiCon, write-protect for MC).
    pub fn set_tracking(&mut self, mode: TrackingMode) {
        self.tracking = mode;
    }

    /// Current tracking mode.
    pub fn tracking(&self) -> TrackingMode {
        self.tracking
    }

    /// `/proc/pid/clear_refs` equivalent: clear all soft-dirty bits and
    /// re-arm tracking on every resident frame. Returns the number of frames
    /// walked (the kernel charges `clear_refs_per_page` each).
    pub fn clear_refs(&mut self) -> u64 {
        let mut walked = 0;
        for f in self.frames.values_mut() {
            f.soft_dirty = false;
            f.tracked_clean = true;
            walked += 1;
        }
        walked
    }

    /// `/proc/pid/pagemap` equivalent: virtual page numbers of frames with
    /// the soft-dirty bit set, in ascending order. The kernel charges
    /// `pagemap_scan_per_page` for every *mapped* page scanned, not only the
    /// dirty ones — the scan walks the whole address space (§VII-C).
    pub fn soft_dirty_vpns(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .frames
            .iter()
            .filter(|(_, f)| f.soft_dirty)
            .map(|(&vpn, _)| vpn)
            .collect();
        v.sort_unstable();
        v
    }

    /// Count of currently soft-dirty frames.
    pub fn soft_dirty_count(&self) -> usize {
        self.frames.values().filter(|f| f.soft_dirty).count()
    }

    // ------------------------------------------------------------------
    // Checkpoint support
    // ------------------------------------------------------------------

    /// Copy out one page's contents (zeros if unmaterialized but mapped).
    pub fn snapshot_page(&self, vpn: u64) -> SimResult<PageBuf> {
        let addr = vpn * PS;
        self.vma_at(addr).ok_or(SimError::Segfault { addr })?;
        Ok(match self.frames.get(&vpn) {
            Some(f) => f.snapshot(),
            None => zero_page(),
        })
    }

    /// Install page contents at restore time (does not set soft-dirty: a
    /// freshly restored container starts with a clean tracking slate).
    pub fn install_page(&mut self, vpn: u64, data: &[u8; PAGE_SIZE]) -> SimResult<()> {
        let addr = vpn * PS;
        self.vma_at(addr).ok_or(SimError::Segfault { addr })?;
        let mut f = PageFrame::from_bytes(data);
        f.soft_dirty = false;
        f.tracked_clean = true;
        self.frames.insert(vpn, f);
        Ok(())
    }

    /// All resident (materialized) vpns in ascending order — a *full* dump.
    pub fn resident_vpns(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.frames.keys().copied().collect();
        v.sort_unstable();
        v
    }

    // ------------------------------------------------------------------
    // Copy-on-write checkpoint support
    // ------------------------------------------------------------------

    /// Write-protect `vpns` for a deferred checkpoint: instead of copying
    /// these pages while the container is frozen, the caller records them
    /// here and drains them after resume ([`Self::cow_drain`]). A write to a
    /// protected page before it is drained triggers an eager
    /// copy-before-write (see `touch_page`).
    pub fn cow_protect(&mut self, vpns: &[u64]) {
        self.cow_protected.extend(vpns.iter().copied());
    }

    /// Pages still write-protected (not yet drained or faulted).
    pub fn cow_protected_count(&self) -> usize {
        self.cow_protected.len()
    }

    /// Pages whose checkpoint-time contents were eagerly staged by write
    /// faults since the last call. Their copy cost was already paid at
    /// fault time (runtime overhead), so handing them over is free.
    pub fn take_cow_staged(&mut self) -> Vec<(u64, PageBuf)> {
        std::mem::take(&mut self.cow_staged)
    }

    /// Background-copier step: un-protect and copy out up to `max` protected
    /// pages in ascending vpn order. The caller charges per-page drain cost
    /// for exactly the pages returned.
    pub fn cow_drain(&mut self, max: usize) -> Vec<(u64, PageBuf)> {
        let take: Vec<u64> = self.cow_protected.iter().take(max).copied().collect();
        let mut out = Vec::with_capacity(take.len());
        for vpn in take {
            self.cow_protected.remove(&vpn);
            let snap = match self.frames.get(&vpn) {
                Some(f) => f.snapshot(),
                None => zero_page(),
            };
            out.push((vpn, snap));
        }
        out
    }

    /// COW write-protect faults taken since the last call (per-epoch
    /// accounting for the `CowFault` trace mark).
    pub fn take_cow_faults(&mut self) -> u64 {
        std::mem::take(&mut self.cow_faults)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space_with_heap() -> AddressSpace {
        let mut a = AddressSpace::new();
        a.mmap(Vma {
            start: 0x10000,
            len: 0x10000, // 16 pages
            perms: Perms::RW,
            kind: VmaKind::Anon,
            is_heap: true,
            is_stack: false,
        })
        .unwrap();
        a
    }

    #[test]
    fn rw_roundtrip_and_zero_fill() {
        let mut a = space_with_heap();
        let mut buf = [0u8; 4];
        a.read(0x10010, &mut buf).unwrap();
        assert_eq!(buf, [0; 4], "untouched memory reads as zeros");
        a.write(0x10010, b"abcd").unwrap();
        a.read(0x10010, &mut buf).unwrap();
        assert_eq!(&buf, b"abcd");
    }

    #[test]
    fn cross_page_write() {
        let mut a = space_with_heap();
        let addr = 0x10000 + PS - 2; // straddles a page boundary
        a.write(addr, b"wxyz").unwrap();
        let mut buf = [0u8; 4];
        a.read(addr, &mut buf).unwrap();
        assert_eq!(&buf, b"wxyz");
        assert_eq!(a.resident_pages(), 2);
    }

    #[test]
    fn segfault_outside_vma() {
        let mut a = space_with_heap();
        assert!(matches!(
            a.write(0x1000, b"x"),
            Err(SimError::Segfault { .. })
        ));
        let mut b = [0u8; 1];
        assert!(a.read(0xFFFF_0000, &mut b).is_err());
    }

    #[test]
    fn write_to_readonly_faults() {
        let mut a = AddressSpace::new();
        a.mmap(Vma {
            start: 0x1000,
            len: 0x1000,
            perms: Perms::R,
            kind: VmaKind::Anon,
            is_heap: false,
            is_stack: false,
        })
        .unwrap();
        assert!(a.write(0x1000, b"x").is_err());
        let mut buf = [0u8; 1];
        assert!(a.read(0x1000, &mut buf).is_ok());
    }

    #[test]
    fn soft_dirty_tracking_counts_first_writes_only() {
        let mut a = space_with_heap();
        a.set_tracking(TrackingMode::SoftDirty);
        a.write(0x10000, b"seed").unwrap();
        a.clear_refs();
        assert_eq!(a.soft_dirty_count(), 0);

        let o1 = a.write(0x10000, b"one").unwrap();
        assert_eq!(o1.tracking_faults, 1);
        let o2 = a.write(0x10002, b"two").unwrap();
        assert_eq!(
            o2.tracking_faults, 0,
            "second write to the same page is free"
        );
        let o3 = a.write(0x12000, b"three").unwrap();
        assert_eq!(o3.tracking_faults, 1, "fresh page under tracking faults");
        assert_eq!(a.soft_dirty_vpns(), vec![0x10, 0x12]);
    }

    #[test]
    fn clear_refs_rearms() {
        let mut a = space_with_heap();
        a.set_tracking(TrackingMode::SoftDirty);
        a.write(0x10000, b"x").unwrap();
        let walked = a.clear_refs();
        assert_eq!(walked, 1);
        let o = a.write(0x10000, b"y").unwrap();
        assert_eq!(o.tracking_faults, 1, "fault re-armed after clear_refs");
    }

    #[test]
    fn no_tracking_no_faults() {
        let mut a = space_with_heap();
        let o = a.write(0x10000, b"x").unwrap();
        assert_eq!(o.tracking_faults, 0);
        assert!(
            a.frames.get(&0x10).unwrap().soft_dirty,
            "soft-dirty bit set regardless"
        );
    }

    #[test]
    fn mmap_rejects_overlap_and_misalignment() {
        let mut a = space_with_heap();
        assert!(a.mmap_anon(0x10000, 0x1000).is_err(), "exact overlap");
        assert!(a.mmap_anon(0x1F000, 0x2000).is_err(), "tail overlap");
        assert!(a.mmap_anon(0x30001, 0x1000).is_err(), "misaligned start");
        assert!(a.mmap_anon(0x30000, 0).is_err(), "empty");
        assert!(a.mmap_anon(0x20000, 0x1000).is_ok(), "adjacent is fine");
    }

    #[test]
    fn brk_grows_and_shrinks() {
        let mut a = space_with_heap();
        assert_eq!(a.current_brk(), Some(0x20000));
        let nb = a.brk(0x28001).unwrap();
        assert_eq!(nb, 0x29000, "rounded up to a page");
        a.write(0x28000, b"deep").unwrap();
        assert_eq!(a.brk(0x21000).unwrap(), 0x21000);
        let mut buf = [0u8; 4];
        a.read(0x20000, &mut buf).unwrap(); // still inside
        assert!(a.read(0x28000, &mut buf).is_err(), "shrunk region unmapped");
    }

    #[test]
    fn brk_collision_with_next_vma() {
        let mut a = space_with_heap();
        a.mmap_anon(0x30000, 0x1000).unwrap();
        assert!(a.brk(0x30000).is_ok(), "may abut");
        assert!(a.brk(0x31000).is_err(), "may not overlap");
    }

    #[test]
    fn snapshot_install_roundtrip() {
        let mut a = space_with_heap();
        a.write(0x11000, b"persist me").unwrap();
        let snap = a.snapshot_page(0x11).unwrap();

        let mut b = space_with_heap();
        b.install_page(0x11, &snap).unwrap();
        let mut buf = [0u8; 10];
        b.read(0x11000, &mut buf).unwrap();
        assert_eq!(&buf, b"persist me");
        assert_eq!(b.soft_dirty_count(), 0, "restored pages start clean");
    }

    #[test]
    fn counters() {
        let mut a = space_with_heap();
        a.mmap_file(
            0x40000,
            0x2000,
            MappedFile {
                ino: crate::ids::Ino(5),
                file_off: 0,
            },
            Perms::RX,
        )
        .unwrap();
        assert_eq!(a.vma_count(), 2);
        assert_eq!(a.mapped_file_count(), 1);
        assert_eq!(a.mapped_pages(), 16 + 2);
        a.write(0x10000, b"x").unwrap();
        assert_eq!(a.resident_vpns(), vec![0x10]);
    }

    #[test]
    fn cow_drain_returns_checkpoint_contents() {
        let mut a = space_with_heap();
        a.write(0x10000, b"AAAA").unwrap();
        a.write(0x11000, b"BBBB").unwrap();
        a.cow_protect(&[0x10, 0x11]);
        assert_eq!(a.cow_protected_count(), 2);
        let drained = a.cow_drain(8);
        assert_eq!(a.cow_protected_count(), 0);
        let vpns: Vec<u64> = drained.iter().map(|(v, _)| *v).collect();
        assert_eq!(vpns, vec![0x10, 0x11], "ascending vpn order");
        assert_eq!(&drained[0].1[..4], b"AAAA");
        assert_eq!(&drained[1].1[..4], b"BBBB");
    }

    #[test]
    fn cow_fault_stages_old_contents_before_write() {
        let mut a = space_with_heap();
        a.set_tracking(TrackingMode::SoftDirty);
        a.write(0x10000, b"OLD!").unwrap();
        a.cow_protect(&[0x10]);
        let o = a.write(0x10000, b"NEW!").unwrap();
        assert_eq!(o.cow_faults, 1, "write to a protected page faults");
        assert_eq!(a.cow_protected_count(), 0, "fault un-protects the page");
        let staged = a.take_cow_staged();
        assert_eq!(staged.len(), 1);
        assert_eq!(&staged[0].1[..4], b"OLD!", "staged copy predates the write");
        let mut buf = [0u8; 4];
        a.read(0x10000, &mut buf).unwrap();
        assert_eq!(&buf, b"NEW!", "the write itself still landed");
        assert_eq!(a.take_cow_faults(), 1);
        assert_eq!(a.take_cow_faults(), 0, "counter is take-once");
        let o2 = a.write(0x10000, b"more").unwrap();
        assert_eq!(o2.cow_faults, 0, "unprotected page writes freely");
    }

    #[test]
    fn cow_drain_respects_chunk_size_and_skips_faulted_pages() {
        let mut a = space_with_heap();
        for p in 0..6u64 {
            a.write(0x10000 + p * PS, &[p as u8; 4]).unwrap();
        }
        a.cow_protect(&[0x10, 0x11, 0x12, 0x13, 0x14, 0x15]);
        a.write(0x12000, b"racer").unwrap(); // faults 0x12 out of the set
        let c1 = a.cow_drain(2);
        assert_eq!(
            c1.iter().map(|(v, _)| *v).collect::<Vec<_>>(),
            vec![0x10, 0x11]
        );
        let c2 = a.cow_drain(100);
        assert_eq!(
            c2.iter().map(|(v, _)| *v).collect::<Vec<_>>(),
            vec![0x13, 0x14, 0x15],
            "faulted page left the protected set"
        );
        assert_eq!(a.take_cow_staged().len(), 1);
        assert_eq!(a.cow_protected_count(), 0);
    }

    #[test]
    fn munmap_drops_frames() {
        let mut a = space_with_heap();
        a.mmap_anon(0x40000, 0x1000).unwrap();
        a.write(0x40000, b"gone").unwrap();
        let v = a.munmap(0x40000).unwrap();
        assert_eq!(v.len, 0x1000);
        assert_eq!(a.resident_pages(), 0);
        assert!(a.munmap(0x40000).is_err());
    }
}
