//! Simulated virtual memory: VMAs, 4 KiB pages with real contents, and the
//! dirty-tracking machinery both replication systems rely on.
//!
//! NiLiCon identifies modified user-space pages with the kernel's *soft-dirty*
//! feature (`/proc/pid/clear_refs` + `/proc/pid/pagemap`, §II-B); the MC/KVM
//! baseline write-protects guest pages and takes a VM exit on first touch
//! (§VII-C). Both are modeled here as [`TrackingMode`]s over the same page
//! table, differing in the per-fault cost the kernel charges.

mod addr_space;
mod page;
mod vma;

pub use addr_space::{AddressSpace, WriteOutcome};
pub use page::{zero_page, PageBuf, PageFrame};
pub use vma::{MappedFile, Perms, Vma, VmaKind};

/// How first-writes to pages are tracked during an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrackingMode {
    /// No tracking: writes are free of tracking faults (unreplicated runs).
    #[default]
    None,
    /// Linux soft-dirty PTEs: first write after `clear_refs` takes a minor
    /// write-protect fault handled in the host kernel.
    SoftDirty,
    /// Hypervisor write protection: first write takes a VM exit/entry pair
    /// (the MC baseline's dominant runtime overhead).
    WriteProtect,
    /// Hardware page-modification logging (Intel PML): the CPU appends
    /// modified-page addresses to a log with no per-write fault. The paper's
    /// §VIII points at Phantasy, which uses PML to cut the runtime tracking
    /// overhead — implemented here as an extension (see
    /// `nilicon::OptimizationConfig::pml_tracking`).
    HardwareLog,
}
