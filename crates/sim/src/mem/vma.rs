//! Virtual memory areas.

use crate::ids::Ino;
use crate::PAGE_SIZE;
use serde::{Deserialize, Serialize};

/// Page protection bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Perms {
    /// Readable.
    pub r: bool,
    /// Writable.
    pub w: bool,
    /// Executable.
    pub x: bool,
}

impl Perms {
    /// `rw-`
    pub const RW: Perms = Perms {
        r: true,
        w: true,
        x: false,
    };
    /// `r--`
    pub const R: Perms = Perms {
        r: true,
        w: false,
        x: false,
    };
    /// `r-x`
    pub const RX: Perms = Perms {
        r: true,
        w: false,
        x: true,
    };
}

/// A file mapping's backing reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappedFile {
    /// Backing inode.
    pub ino: Ino,
    /// Offset into the file at which the mapping starts (page aligned).
    pub file_off: u64,
}

/// What backs a VMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VmaKind {
    /// Anonymous memory (heap, stack, anonymous mmap).
    Anon,
    /// A file-backed mapping (dynamically linked libraries, mmap'ed data).
    /// These contribute the per-file `stat` costs of §V cause (1).
    File(MappedFile),
}

/// One virtual memory area.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vma {
    /// Start address (page aligned).
    pub start: u64,
    /// Length in bytes (page aligned).
    pub len: u64,
    /// Protection.
    pub perms: Perms,
    /// Backing.
    pub kind: VmaKind,
    /// Marks the heap VMA (grown by `brk`).
    pub is_heap: bool,
    /// Marks a stack VMA.
    pub is_stack: bool,
}

impl Vma {
    /// Exclusive end address.
    #[inline]
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// Whether `addr` falls inside this VMA.
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end()
    }

    /// Number of pages spanned.
    #[inline]
    pub fn pages(&self) -> u64 {
        self.len / PAGE_SIZE as u64
    }

    /// First virtual page number.
    #[inline]
    pub fn first_vpn(&self) -> u64 {
        self.start / PAGE_SIZE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vma(start: u64, len: u64) -> Vma {
        Vma {
            start,
            len,
            perms: Perms::RW,
            kind: VmaKind::Anon,
            is_heap: false,
            is_stack: false,
        }
    }

    #[test]
    fn geometry() {
        let v = vma(0x1000, 0x3000);
        assert_eq!(v.end(), 0x4000);
        assert_eq!(v.pages(), 3);
        assert_eq!(v.first_vpn(), 1);
        assert!(v.contains(0x1000));
        assert!(v.contains(0x3fff));
        assert!(!v.contains(0x4000));
        assert!(!v.contains(0xfff));
    }

    #[test]
    fn perms_constants() {
        let (rw, rx, r) = (Perms::RW, Perms::RX, Perms::R);
        assert!(rw.w && !rw.x);
        assert!(rx.x && !rx.w);
        assert!(r.r && !r.w && !r.x);
    }
}
