//! # nilicon-sim — simulated Linux-like kernel substrate
//!
//! This crate is the foundation of the NiLiCon (IPDPS 2020) reproduction. It
//! provides an in-process, deterministic, single-threaded simulation of the
//! pieces of Linux that NiLiCon's container replication touches:
//!
//! * **virtual time** — a nanosecond clock and a cost meter; no operation ever
//!   consults the wall clock, so every experiment is reproducible bit-for-bit,
//! * **memory** — address spaces with VMAs and 4 KiB pages holding *real
//!   bytes*, soft-dirty tracking (`clear_refs`/`pagemap`) and write-protect
//!   tracking (for the MC/KVM baseline),
//! * **VFS and page cache** — inodes, regular files, directories, mounts, and
//!   a page cache with per-entry Dirty and DNC ("Dirty but Not Checkpointed")
//!   bits plus the paper's `fgetfc` syscall,
//! * **block layer** — a logical block store with a write log and epoch
//!   barriers (the attachment point for the DRBD crate),
//! * **network** — per-namespace TCP stacks with sequence/ack state machines,
//!   socket **repair mode**, RST semantics, a virtual bridge, and a
//!   `sch_plug`-style qdisc for output buffering and input blocking,
//! * **processes** — process trees, threads with register files and signal
//!   masks, the cgroup **freezer** (virtual signals), and parasite-code
//!   attachment points,
//! * **cgroups & namespaces** — `cpuacct.usage` for the failure detector and
//!   the six namespaces with collection-cost modeling,
//! * **ftrace** — a hook registry on named kernel functions used by NiLiCon's
//!   infrequently-modified-state change tracker.
//!
//! State is real (a checkpoint/restore bug loses real bytes and fails
//! validation); *time* is modeled by [`costs::CostModel`], whose constants are
//! documented against the measurements the paper itself reports.

pub mod block;
pub mod cgroup;
pub mod cluster;
pub mod costs;
pub mod error;
pub mod fs;
pub mod ftrace;
pub mod ids;
pub mod kernel;
pub mod mem;
pub mod net;
pub mod ns;
pub mod proc;
pub mod replay;
pub mod time;

pub use costs::CostModel;
pub use error::{SimError, SimResult};
pub use kernel::Kernel;
pub use mem::{zero_page, PageBuf};
pub use time::{Nanos, MICROSECOND, MILLISECOND, SECOND};

/// Size of a simulated page, matching x86-64 base pages.
pub const PAGE_SIZE: usize = 4096;

/// Commonly used imports for downstream crates.
pub mod prelude {
    pub use crate::costs::CostModel;
    pub use crate::error::{SimError, SimResult};
    pub use crate::ids::*;
    pub use crate::kernel::Kernel;
    pub use crate::mem::{zero_page, PageBuf};
    pub use crate::time::{Nanos, MICROSECOND, MILLISECOND, SECOND};
    pub use crate::PAGE_SIZE;
}
