//! ftrace-style kernel-function hooks.
//!
//! NiLiCon's most effective optimization (§V-B) caches the infrequently-
//! modified in-kernel state components (control groups, namespaces, mount
//! points, device files, memory-mapped files) and only re-collects one when
//! it actually changed. Change detection uses a kernel module that hooks the
//! kernel functions which can mutate those components; when a hook's checks
//! indicate a container-visible change, the primary agent is signalled.
//!
//! The paper notes the prototype instruments only "the most common paths" —
//! we model that too: hooks are registered per function name, and a mutation
//! through an *unhooked* path is silently missed (exercised by an ablation
//! test).

use std::collections::{HashMap, HashSet};

/// The cacheable infrequently-modified state components (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateComponent {
    /// Control groups.
    Cgroups,
    /// Namespaces.
    Namespaces,
    /// Mount points.
    Mounts,
    /// Device files.
    DeviceFiles,
    /// Memory-mapped files.
    MappedFiles,
}

/// All components, fixed order.
pub const ALL_COMPONENTS: [StateComponent; 5] = [
    StateComponent::Cgroups,
    StateComponent::Namespaces,
    StateComponent::Mounts,
    StateComponent::DeviceFiles,
    StateComponent::MappedFiles,
];

/// Kernel functions that can mutate infrequently-modified state. The set is
/// intentionally *not* exhaustive (mirroring the paper's prototype): the
/// default registration covers the common paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelFn {
    /// `do_mount`
    Mount,
    /// `ksys_umount`
    Umount,
    /// `cgroup_attach_task` / limit writes
    CgroupModify,
    /// `setns` / namespace config updates
    NsModify,
    /// `mknod`
    Mknod,
    /// `do_mmap` of a file mapping
    MmapFile,
    /// `munmap` of a file mapping
    MunmapFile,
    /// An uncommon path the prototype does not instrument (e.g. a rename
    /// race through a bind mount) — used by the coverage-gap ablation.
    UncommonPath,
}

/// The hook registry: which kernel functions notify which components.
#[derive(Debug, Default)]
pub struct FtraceHooks {
    hooks: HashMap<KernelFn, StateComponent>,
    /// Components flagged changed since the agent last drained signals.
    pending: HashSet<StateComponent>,
    hits_total: u64,
}

impl FtraceHooks {
    /// Empty registry (no hooks — every mutation is missed).
    pub fn new() -> Self {
        Self::default()
    }

    /// The default NiLiCon registration: common paths only (§V-B —
    /// "our implementation only covers the most common paths and that was
    /// sufficient for all of our benchmarks"). [`KernelFn::UncommonPath`] is
    /// deliberately left unhooked.
    pub fn with_default_hooks() -> Self {
        let mut h = Self::new();
        h.register(KernelFn::Mount, StateComponent::Mounts);
        h.register(KernelFn::Umount, StateComponent::Mounts);
        h.register(KernelFn::CgroupModify, StateComponent::Cgroups);
        h.register(KernelFn::NsModify, StateComponent::Namespaces);
        h.register(KernelFn::Mknod, StateComponent::DeviceFiles);
        h.register(KernelFn::MmapFile, StateComponent::MappedFiles);
        h.register(KernelFn::MunmapFile, StateComponent::MappedFiles);
        h
    }

    /// Register a hook: calls to `func` invalidate `component`.
    pub fn register(&mut self, func: KernelFn, component: StateComponent) {
        self.hooks.insert(func, component);
    }

    /// Remove a hook.
    pub fn unregister(&mut self, func: KernelFn) {
        self.hooks.remove(&func);
    }

    /// Called by kernel code on every invocation of a hookable function.
    /// (ftrace itself has negligible overhead — §V-B — so no cost is
    /// charged here.)
    pub fn hit(&mut self, func: KernelFn) {
        self.hits_total += 1;
        if let Some(&c) = self.hooks.get(&func) {
            self.pending.insert(c);
        }
    }

    /// Drain pending change signals (the primary agent does this at each
    /// checkpoint to decide which cached components to re-collect). Sorted
    /// for determinism.
    pub fn drain_signals(&mut self) -> Vec<StateComponent> {
        let mut v: Vec<StateComponent> = ALL_COMPONENTS
            .iter()
            .copied()
            .filter(|c| self.pending.contains(c))
            .collect();
        self.pending.clear();
        v.sort_by_key(|c| ALL_COMPONENTS.iter().position(|x| x == c));
        v
    }

    /// Peek whether a component has a pending change signal.
    pub fn is_pending(&self, c: StateComponent) -> bool {
        self.pending.contains(&c)
    }

    /// Total hook-function invocations observed.
    pub fn hits_total(&self) -> u64 {
        self.hits_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_hooks_signal_components() {
        let mut h = FtraceHooks::with_default_hooks();
        h.hit(KernelFn::Mount);
        h.hit(KernelFn::CgroupModify);
        assert!(h.is_pending(StateComponent::Mounts));
        let sigs = h.drain_signals();
        assert_eq!(sigs, vec![StateComponent::Cgroups, StateComponent::Mounts]);
        assert!(h.drain_signals().is_empty(), "drained");
    }

    #[test]
    fn uncommon_path_is_missed() {
        // The paper's explicit prototype caveat: uninstrumented paths do not
        // invalidate the cache.
        let mut h = FtraceHooks::with_default_hooks();
        h.hit(KernelFn::UncommonPath);
        assert!(h.drain_signals().is_empty());
        assert_eq!(
            h.hits_total(),
            1,
            "the call happened; the hook just wasn't there"
        );
    }

    #[test]
    fn register_unregister() {
        let mut h = FtraceHooks::new();
        h.hit(KernelFn::Mount);
        assert!(h.drain_signals().is_empty(), "no hooks registered");
        h.register(KernelFn::UncommonPath, StateComponent::Mounts);
        h.hit(KernelFn::UncommonPath);
        assert_eq!(h.drain_signals(), vec![StateComponent::Mounts]);
        h.unregister(KernelFn::UncommonPath);
        h.hit(KernelFn::UncommonPath);
        assert!(h.drain_signals().is_empty());
    }

    #[test]
    fn duplicate_hits_coalesce() {
        let mut h = FtraceHooks::with_default_hooks();
        h.hit(KernelFn::Mount);
        h.hit(KernelFn::Umount);
        h.hit(KernelFn::Mount);
        assert_eq!(h.drain_signals(), vec![StateComponent::Mounts]);
    }
}
