//! Property tests: DRBD replication under random write/barrier/commit/crash
//! schedules (DESIGN.md invariant 10) — the backup disk always equals the
//! primary disk as of the last *committed* barrier.

use nilicon_drbd::{DrbdBackup, DrbdPrimary};
use nilicon_sim::block::BlockDevice;
use nilicon_sim::ids::{DevId, Ino};
use nilicon_sim::PAGE_SIZE;
use proptest::prelude::*;

fn page(tag: u8) -> Box<[u8; PAGE_SIZE]> {
    Box::new([tag; PAGE_SIZE])
}

#[derive(Debug, Clone)]
enum Ev {
    Write { ino: u64, idx: u64, tag: u8 },
    EndEpoch,
    CommitLatest,
}

fn schedule() -> impl Strategy<Value = Vec<Ev>> {
    proptest::collection::vec(
        prop_oneof![
            4 => (1..3u64, 0..32u64, any::<u8>())
                .prop_map(|(ino, idx, tag)| Ev::Write { ino, idx, tag }),
            2 => Just(Ev::EndEpoch),
            1 => Just(Ev::CommitLatest),
        ],
        1..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn backup_equals_primary_at_last_committed_barrier(events in schedule()) {
        let mut pdisk = BlockDevice::new(DevId(1));
        let mut bdisk = BlockDevice::new(DevId(2));
        let mut pri = DrbdPrimary::new();
        let mut bak = DrbdBackup::new();

        // Reference: snapshot of the primary digest at each sealed epoch.
        let mut epoch = 0u64;
        let mut sealed_digests: Vec<(u64, u64)> = Vec::new(); // (epoch, digest)
        let mut committed: Option<u64> = None;

        for ev in events {
            match ev {
                Ev::Write { ino, idx, tag } => {
                    pdisk.write_page(Ino(ino), idx, page(tag));
                    for m in pri.ship(&mut pdisk) {
                        bak.receive(m);
                    }
                }
                Ev::EndEpoch => {
                    epoch += 1;
                    bak.receive(pri.barrier(epoch));
                    sealed_digests.push((epoch, pdisk.digest()));
                }
                Ev::CommitLatest => {
                    if let Some(&(e, digest)) = sealed_digests.last() {
                        bak.commit(e, &mut bdisk);
                        committed = Some(e);
                        prop_assert_eq!(
                            bdisk.digest(),
                            digest,
                            "backup disk == primary at barrier {}",
                            e
                        );
                    }
                }
            }
        }

        // Crash now: discard uncommitted; the backup must still equal the
        // primary's state at the last committed barrier.
        bak.discard_uncommitted();
        if let Some(e) = committed {
            let want = sealed_digests.iter().find(|(se, _)| *se == e).unwrap().1;
            prop_assert_eq!(bdisk.digest(), want, "post-crash disk == committed state");
        } else {
            prop_assert_eq!(bdisk.stored_pages(), 0, "nothing committed, nothing applied");
        }
        prop_assert_eq!(bak.buffered(), 0);
    }

    #[test]
    fn commit_is_idempotent_and_monotone(n_epochs in 1..10u64) {
        let mut pdisk = BlockDevice::new(DevId(1));
        let mut bdisk = BlockDevice::new(DevId(2));
        let mut pri = DrbdPrimary::new();
        let mut bak = DrbdBackup::new();
        for e in 1..=n_epochs {
            pdisk.write_page(Ino(1), e, page(e as u8));
            for m in pri.ship(&mut pdisk) {
                bak.receive(m);
            }
            bak.receive(pri.barrier(e));
        }
        bak.commit(n_epochs, &mut bdisk);
        let digest = bdisk.digest();
        // Double commit and stale (lower-epoch) commit are no-ops.
        bak.commit(n_epochs, &mut bdisk);
        bak.commit(1, &mut bdisk);
        prop_assert_eq!(bdisk.digest(), digest);
        prop_assert_eq!(bak.committed_epoch(), Some(n_epochs));
        prop_assert_eq!(pdisk.digest(), digest, "fully committed == primary");
    }
}
