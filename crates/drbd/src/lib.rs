//! # nilicon-drbd — replicated block device with epoch barriers
//!
//! Port of the Remus/Xen DRBD protocol NiLiCon reuses (§II-A, §IV):
//!
//! * the primary and backup have separate disks with initially identical
//!   content;
//! * reads are served locally; writes are applied to the primary's disk
//!   immediately and shipped to the backup **asynchronously** during the
//!   epoch;
//! * at the end of each epoch the primary sends a **barrier** marking the end
//!   of that epoch's writes;
//! * the backup buffers writes **in memory** and applies an epoch's writes to
//!   its disk only when that epoch's full container state has been committed
//!   (checkpoint acked) — so a failover never exposes a disk state ahead of
//!   the memory state;
//! * on failover, sealed-but-uncommitted epochs are discarded.
//!
//! ## Observability
//!
//! Link batches can be summarized with [`wire_stats`]; the NiLiCon engine
//! feeds the result into the `DrbdShip` trace event (see `OBSERVABILITY.md`
//! at the repo root for the full epoch-phase event schema).

#![warn(missing_docs)]

use nilicon_sim::block::{BlockDevice, DiskWrite};
use nilicon_sim::PAGE_SIZE;
use std::collections::BTreeMap;

/// A message on the replication link.
#[derive(Debug, Clone)]
pub enum DrbdMsg {
    /// One replicated disk write.
    Write(DiskWrite),
    /// End-of-epoch barrier: all writes of `epoch` have been sent.
    Barrier(u64),
}

impl DrbdMsg {
    /// Wire size of this message (for link-time accounting).
    pub fn wire_bytes(&self) -> u64 {
        match self {
            DrbdMsg::Write(_) => PAGE_SIZE as u64 + 24,
            DrbdMsg::Barrier(_) => 16,
        }
    }
}

/// Wire-accounting summary of a batch of link messages (feeds link-time
/// cost attribution and the `DrbdShip` trace event).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Disk-write messages in the batch.
    pub writes: u64,
    /// Total wire bytes, barriers included.
    pub bytes: u64,
}

/// Summarize a batch of link messages.
pub fn wire_stats(msgs: &[DrbdMsg]) -> WireStats {
    let mut s = WireStats::default();
    for m in msgs {
        if matches!(m, DrbdMsg::Write(_)) {
            s.writes += 1;
        }
        s.bytes += m.wire_bytes();
    }
    s
}

/// Primary-side DRBD: drains the local device's write log and ships it.
#[derive(Debug, Default)]
pub struct DrbdPrimary {
    writes_shipped: u64,
    barriers_sent: u64,
}

impl DrbdPrimary {
    /// New primary-side instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drain the primary device's pending writes into link messages
    /// (happens continuously during the epoch — asynchronous shipping).
    pub fn ship(&mut self, disk: &mut BlockDevice) -> Vec<DrbdMsg> {
        let writes = disk.take_writes();
        self.writes_shipped += writes.len() as u64;
        writes.into_iter().map(DrbdMsg::Write).collect()
    }

    /// Produce the end-of-epoch barrier (§IV: the primary agent "directs the
    /// DRBD module to send to the backup a barrier").
    pub fn barrier(&mut self, epoch: u64) -> DrbdMsg {
        self.barriers_sent += 1;
        DrbdMsg::Barrier(epoch)
    }

    /// Lifetime counters `(writes, barriers)`.
    pub fn counters(&self) -> (u64, u64) {
        (self.writes_shipped, self.barriers_sent)
    }
}

/// Backup-side DRBD: buffers writes in memory, commits on epoch commit.
#[derive(Debug, Default)]
pub struct DrbdBackup {
    /// Writes of the epoch currently being received (no barrier yet).
    open: Vec<DiskWrite>,
    /// Epochs whose barrier arrived, awaiting commit. Keyed by epoch.
    sealed: BTreeMap<u64, Vec<DiskWrite>>,
    /// Highest epoch committed to the backup disk.
    committed: Option<u64>,
}

impl DrbdBackup {
    /// New backup-side instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Receive one link message.
    pub fn receive(&mut self, msg: DrbdMsg) {
        match msg {
            DrbdMsg::Write(w) => self.open.push(w),
            DrbdMsg::Barrier(epoch) => {
                let writes = std::mem::take(&mut self.open);
                self.sealed.insert(epoch, writes);
            }
        }
    }

    /// Whether `epoch`'s barrier has arrived (§IV: "once the backup agent has
    /// received both the disk writes and container state, it sends an
    /// acknowledgment").
    pub fn epoch_complete(&self, epoch: u64) -> bool {
        self.sealed.contains_key(&epoch) || self.committed.is_some_and(|c| c >= epoch)
    }

    /// Commit all sealed epochs up to and including `epoch` onto the backup
    /// disk. Returns pages written.
    pub fn commit(&mut self, epoch: u64, disk: &mut BlockDevice) -> usize {
        let to_commit: Vec<u64> = self.sealed.range(..=epoch).map(|(&e, _)| e).collect();
        let mut n = 0;
        for e in to_commit {
            let writes = self.sealed.remove(&e).expect("key listed from range");
            for w in &writes {
                disk.apply_replicated(w);
                n += 1;
            }
            self.committed = Some(self.committed.map_or(e, |c| c.max(e)));
        }
        n
    }

    /// Failover: discard everything not committed (uncommitted epochs must
    /// not survive — their memory state was never acked either).
    pub fn discard_uncommitted(&mut self) -> usize {
        let n = self.open.len() + self.sealed.values().map(Vec::len).sum::<usize>();
        self.open.clear();
        self.sealed.clear();
        n
    }

    /// Buffered (not yet committed) write count.
    pub fn buffered(&self) -> usize {
        self.open.len() + self.sealed.values().map(Vec::len).sum::<usize>()
    }

    /// Highest committed epoch.
    pub fn committed_epoch(&self) -> Option<u64> {
        self.committed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nilicon_sim::ids::{DevId, Ino};

    fn page(tag: u8) -> Box<[u8; PAGE_SIZE]> {
        Box::new([tag; PAGE_SIZE])
    }

    struct Pair {
        pdisk: BlockDevice,
        bdisk: BlockDevice,
        pri: DrbdPrimary,
        bak: DrbdBackup,
    }

    fn pair() -> Pair {
        Pair {
            pdisk: BlockDevice::new(DevId(1)),
            bdisk: BlockDevice::new(DevId(2)),
            pri: DrbdPrimary::new(),
            bak: DrbdBackup::new(),
        }
    }

    impl Pair {
        fn run_epoch(&mut self, epoch: u64, writes: &[(u64, u8)]) {
            for &(idx, tag) in writes {
                self.pdisk.write_page(Ino(1), idx, page(tag));
            }
            for msg in self.pri.ship(&mut self.pdisk) {
                self.bak.receive(msg);
            }
            let b = self.pri.barrier(epoch);
            self.bak.receive(b);
        }
    }

    #[test]
    fn commit_after_ack_makes_disks_equal() {
        let mut p = pair();
        p.run_epoch(1, &[(0, 1), (1, 2)]);
        assert!(p.bak.epoch_complete(1));
        assert_ne!(p.pdisk.digest(), p.bdisk.digest(), "not yet committed");
        let n = p.bak.commit(1, &mut p.bdisk);
        assert_eq!(n, 2);
        assert_eq!(p.pdisk.digest(), p.bdisk.digest());
        assert_eq!(p.bak.committed_epoch(), Some(1));
    }

    #[test]
    fn uncommitted_epoch_discarded_at_failover() {
        let mut p = pair();
        p.run_epoch(1, &[(0, 1)]);
        p.bak.commit(1, &mut p.bdisk);
        let committed_digest = p.bdisk.digest();

        // Epoch 2's writes arrive (even its barrier) but are never acked.
        p.run_epoch(2, &[(0, 9), (5, 9)]);
        // Epoch 3 partially arrives (no barrier).
        p.pdisk.write_page(Ino(1), 7, page(7));
        for msg in p.pri.ship(&mut p.pdisk) {
            p.bak.receive(msg);
        }
        assert_eq!(p.bak.buffered(), 3);
        let dropped = p.bak.discard_uncommitted();
        assert_eq!(dropped, 3);
        assert_eq!(
            p.bdisk.digest(),
            committed_digest,
            "backup disk = last commit"
        );
        assert_eq!(p.bak.committed_epoch(), Some(1));
    }

    #[test]
    fn commit_applies_epochs_in_order_up_to_target() {
        let mut p = pair();
        p.run_epoch(1, &[(0, 1)]);
        p.run_epoch(2, &[(0, 2)]);
        p.run_epoch(3, &[(0, 3)]);
        // Commit through epoch 2 only.
        let n = p.bak.commit(2, &mut p.bdisk);
        assert_eq!(n, 2);
        assert_eq!(
            p.bdisk.read_page(Ino(1), 0).unwrap()[0],
            2,
            "epoch 2's value"
        );
        assert_eq!(p.bak.buffered(), 1, "epoch 3 still sealed");
        p.bak.commit(3, &mut p.bdisk);
        assert_eq!(p.bdisk.read_page(Ino(1), 0).unwrap()[0], 3);
    }

    #[test]
    fn epoch_complete_semantics() {
        let mut p = pair();
        assert!(!p.bak.epoch_complete(1));
        p.pdisk.write_page(Ino(1), 0, page(1));
        for msg in p.pri.ship(&mut p.pdisk) {
            p.bak.receive(msg);
        }
        assert!(!p.bak.epoch_complete(1), "writes but no barrier yet");
        p.bak.receive(p.pri.barrier(1));
        assert!(p.bak.epoch_complete(1));
        p.bak.commit(1, &mut p.bdisk);
        assert!(p.bak.epoch_complete(1), "committed epochs stay complete");
    }

    #[test]
    fn empty_epochs_are_cheap_and_correct() {
        let mut p = pair();
        for e in 1..=100 {
            p.run_epoch(e, &[]);
        }
        assert_eq!(p.bak.commit(100, &mut p.bdisk), 0);
        assert_eq!(p.bak.committed_epoch(), Some(100));
        assert_eq!(p.pdisk.digest(), p.bdisk.digest());
    }

    #[test]
    fn wire_bytes() {
        let w = DrbdMsg::Write(DiskWrite {
            ino: Ino(1),
            page_idx: 0,
            data: page(0),
        });
        assert_eq!(w.wire_bytes(), 4120);
        assert_eq!(DrbdMsg::Barrier(1).wire_bytes(), 16);
    }

    #[test]
    fn wire_stats_summarizes_batches() {
        let mut p = pair();
        p.pdisk.write_page(Ino(1), 0, page(1));
        p.pdisk.write_page(Ino(1), 1, page(2));
        let mut msgs = p.pri.ship(&mut p.pdisk);
        msgs.push(p.pri.barrier(1));
        let s = wire_stats(&msgs);
        assert_eq!(s.writes, 2);
        assert_eq!(s.bytes, 2 * 4120 + 16);
        assert_eq!(wire_stats(&[]), WireStats::default());
    }

    #[test]
    fn counters() {
        let mut p = pair();
        p.run_epoch(1, &[(0, 1), (1, 1), (2, 1)]);
        assert_eq!(p.pri.counters(), (3, 1));
    }
}
