//! Ablation: knock each §V optimization out of the full NiLiCon
//! configuration, one at a time, and measure what it individually buys —
//! complementing Table I's cumulative view.
//!
//! ```sh
//! cargo run --release --example optimization_ablation [epochs]
//! ```

use nilicon_repro::core::harness::{RunHarness, RunMode};
use nilicon_repro::core::{NiLiConEngine, OptimizationConfig, ReplicationConfig};
use nilicon_repro::sim::CostModel;
use nilicon_repro::workloads::{self, Scale, StreamclusterApp};

fn run(opts: OptimizationConfig, epochs: u64) -> (f64, f64) {
    let scale = Scale::bench();
    let mut w = workloads::streamcluster(scale, 4);
    let mut app = StreamclusterApp::new(scale);
    app.passes = u32::MAX;
    w.app = Box::new(app);

    let engine = NiLiConEngine::new(opts, CostModel::default());
    let mut h = RunHarness::new(
        w.spec,
        w.app,
        w.behavior,
        RunMode::Replicated(Box::new(engine)),
        ReplicationConfig::default(),
        w.parallelism,
    )
    .expect("harness");
    h.run_epochs(epochs).expect("run");
    let r = h.finish();
    // Skip warmup epochs (cold cache + initial sync).
    let warm = &r.metrics.epochs[4..];
    let stop_avg = warm.iter().map(|e| e.stop_time).sum::<u64>() as f64 / warm.len() as f64 / 1e6;
    let steps: u64 = warm.iter().map(|e| e.steps_done).sum();
    let wall: u64 = warm.iter().map(|e| 30_000_000 + e.stop_time).sum();
    (steps as f64 / (wall as f64 / 1e9), stop_avg)
}

fn main() {
    let epochs: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(60);
    println!("ablation: streamcluster, {epochs} epochs each; full config as baseline\n");

    let (full_tput, full_stop) = run(OptimizationConfig::nilicon(), epochs);
    println!(
        "{:<44} {:>12} {:>10}",
        "configuration", "slowdown", "avg stop"
    );
    println!("{:-<70}", "");
    println!(
        "{:<44} {:>11.1}% {:>8.1}ms",
        "full NiLiCon (baseline)", 0.0, full_stop
    );

    type Knockout = Box<dyn Fn(&mut OptimizationConfig)>;
    let knockouts: Vec<(&str, Knockout)> = vec![
        (
            "without CRIU optimizations (§V-A)",
            Box::new(|o| o.optimize_criu = false),
        ),
        (
            "without infrequent-state cache (§V-B)",
            Box::new(|o| o.cache_infrequent = false),
        ),
        (
            "without plug input blocking (§V-C)",
            Box::new(|o| o.plug_input_blocking = false),
        ),
        (
            "without netlink VMAs (§V-D.1)",
            Box::new(|o| o.netlink_vmas = false),
        ),
        (
            "without staging buffer (§V-D.2)",
            Box::new(|o| o.staging_buffer = false),
        ),
        (
            "without shared-memory pages (§V-D.3)",
            Box::new(|o| o.shm_page_transfer = false),
        ),
    ];
    for (label, knock) in knockouts {
        let mut opts = OptimizationConfig::nilicon();
        knock(&mut opts);
        let (tput, stop) = run(opts, epochs);
        let slowdown = (full_tput / tput - 1.0) * 100.0;
        println!("{label:<44} {slowdown:>11.1}% {stop:>8.1}ms");
    }
    println!(
        "\nThe cache (§V-B) is the single most valuable optimization — the paper's\n\
         finding ('the most effective optimization in NiLiCon', Table I's biggest step)."
    );
}
