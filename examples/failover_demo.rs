//! Failover demo: kill the primary mid-run and watch NiLiCon recover —
//! the §VII-A validation experiment, end to end.
//!
//! ```sh
//! cargo run --release --example failover_demo
//! ```

use nilicon_repro::core::harness::{RunHarness, RunMode};
use nilicon_repro::core::{NiLiConEngine, OptimizationConfig, ReplicationConfig};
use nilicon_repro::sim::time::MILLISECOND;
use nilicon_repro::sim::CostModel;
use nilicon_repro::workloads::{self, Scale};

fn main() {
    let workload = workloads::redis(Scale::small(), 4, None);
    let engine = NiLiConEngine::new(OptimizationConfig::nilicon(), CostModel::default());
    let mut harness = RunHarness::new(
        workload.spec,
        workload.app,
        workload.behavior,
        RunMode::Replicated(Box::new(engine)),
        ReplicationConfig::default(),
        workload.parallelism,
    )
    .expect("harness");

    // Fail-stop fault at t=500ms: all primary traffic blocked, as if the
    // cable were pulled (§VII-A's sch_plug emulation).
    let fault_at = 500 * MILLISECOND;
    harness.inject_fault_at(fault_at);
    println!("running with a fail-stop fault scheduled at t=500ms...");

    harness.run_epochs(60).expect("run with failover");
    assert!(harness.on_backup(), "service moved to the backup");

    let r = harness.finish();
    r.verify.expect("no lost updates, no corrupt values");
    assert!(r.recovered);
    assert_eq!(r.broken_connections, 0);

    let detect = r.detection_latency.expect("fault injected");
    let fo = r.failover.expect("failover report");
    println!("\nTimeline (virtual time):");
    println!(
        "  t={:>6.1}ms  fault: primary partitioned",
        fault_at as f64 / 1e6
    );
    println!(
        "  t={:>6.1}ms  detector fires ({} missed 30ms heartbeats; latency {:.0}ms — paper avg: 90ms)",
        (fault_at + detect) as f64 / 1e6,
        3,
        detect as f64 / 1e6
    );
    println!("\nRecovery breakdown (paper Table II, Redis row: 314/28/23/7 = 372ms):");
    println!(
        "  restore  : {:>6.1} ms  (discard uncommitted, materialize images, CRIU restore)",
        fo.restore as f64 / 1e6
    );
    println!(
        "  ARP      : {:>6.1} ms  (gratuitous ARP moves the address to the backup)",
        fo.arp as f64 / 1e6
    );
    println!(
        "  TCP      : {:>6.1} ms  (un-overlapped retransmission wait, 200ms repair RTO)",
        fo.tcp as f64 / 1e6
    );
    println!("  others   : {:>6.1} ms", fo.others as f64 / 1e6);
    println!("  total    : {:>6.1} ms", fo.total() as f64 / 1e6);
    println!("\nAfter failover:");
    println!(
        "  requests served (incl. on backup): {}",
        r.metrics.requests_total
    );
    println!(
        "  broken client connections        : {}",
        r.broken_connections
    );
    println!("  client consistency check         : OK (every acked write survived)");
}
