//! Live migration: CRIU's original use case (§II-B) — checkpoint a container
//! on one host, restore it on another, and keep running. Exercises the
//! checkpoint/restore engine directly, without the replication loop.
//!
//! ```sh
//! cargo run --release --example live_migration
//! ```

use nilicon_repro::container::{Application, ContainerRuntime, ContainerSpec, GuestCtx};
use nilicon_repro::criu::{full_dump, restore_container, DumpConfig, RestoreConfig};
use nilicon_repro::sim::kernel::Kernel;
use nilicon_repro::workloads::{Scale, StreamclusterApp};

fn main() {
    // Source host: a streamcluster container mid-computation.
    let mut source = Kernel::default();
    let mut app = StreamclusterApp::new(Scale::small());
    app.passes = 4;
    let mut spec = ContainerSpec::batch("streamcluster", 10);
    spec.heap_pages = app.heap_pages();
    let container = ContainerRuntime::create(&mut source, &spec).unwrap();
    let pid = container.init_pid();

    {
        let mut ctx = GuestCtx::new(&mut source, pid, 0);
        app.init(&mut ctx).unwrap();
    }
    // Run 10 steps of real clustering on the source host.
    for i in 0..10 {
        let mut ctx = GuestCtx::new(&mut source, pid, i);
        app.step(&mut ctx).unwrap();
    }
    println!("source host: streamcluster ran 10 steps");

    // Checkpoint: freeze → full dump → thaw.
    source.meter.take();
    let image = full_dump(&mut source, &container, &DumpConfig::nilicon()).unwrap();
    let dump_cost = source.meter.take();
    println!(
        "checkpoint: {} pages, {:.1} MiB of state, {:.1} ms virtual dump time",
        image.pages.len(),
        image.state_bytes() as f64 / 1048576.0,
        dump_cost as f64 / 1e6
    );

    // Destination host: restore and continue.
    let mut dest = Kernel::default();
    let restored = restore_container(&mut dest, &image, &RestoreConfig::default()).unwrap();
    restored.finish(&mut dest).unwrap();
    println!(
        "destination host: restored {} processes in {:.1} ms virtual time",
        restored.container.workers.len() + 1,
        restored.restore_time as f64 / 1e6
    );

    // A FRESH app object resumes from the migrated guest state — the
    // algorithm's cursor, centers, and cost all came through the image.
    let mut resumed = StreamclusterApp::new(Scale::small());
    resumed.passes = 4;
    let dest_pid = restored.container.init_pid();
    let mut steps_after = 0u64;
    loop {
        let mut ctx = GuestCtx::new(&mut dest, dest_pid, 100 + steps_after);
        if resumed.step(&mut ctx).unwrap().done {
            break;
        }
        steps_after += 1;
        assert!(steps_after < 10_000, "must converge");
    }
    println!("destination host: computation resumed and completed after {steps_after} more steps");
    println!("migration preserved every byte of algorithm state — no restart from scratch.");
}
