//! Live migration: CRIU's original use case (§II-B), recast as the
//! degenerate `k = 1, n = 1` placement. Migration, coded repair, and rearm
//! are the same stream-while-serving flow in the Placement engine: take a
//! COW-deferred full checkpoint (one short stop), stream the page payload
//! to the destination in bounded chunks while the source keeps computing,
//! seal the assembly, then drive a deliberate failover onto the
//! destination. The trace events are the repair events — `RepairStart`
//! with `kind: "migration"`, one `RepairChunk` per streamed chunk, and a
//! final `RepairComplete` — so `trace-report` renders a migration exactly
//! like a repair.
//!
//! ```sh
//! cargo run --release --example live_migration
//! ```

use nilicon_repro::container::{Application, ContainerRuntime, ContainerSpec, GuestCtx};
use nilicon_repro::core::engine::Checkpointer;
use nilicon_repro::core::{OptimizationConfig, PlacementEngine, TraceEvent, Tracer};
use nilicon_repro::sim::kernel::Kernel;
use nilicon_repro::workloads::{Scale, StreamclusterApp};

/// Pages streamed per chunk while the source keeps serving.
const CHUNK_PAGES: u64 = 64;

fn main() {
    // Source host: a streamcluster container mid-computation.
    let mut source = Kernel::default();
    let mut app = StreamclusterApp::new(Scale::small());
    app.passes = 4;
    let mut spec = ContainerSpec::batch("streamcluster", 10);
    spec.heap_pages = app.heap_pages();
    let container = ContainerRuntime::create(&mut source, &spec).unwrap();
    let pid = container.init_pid();

    {
        let mut ctx = GuestCtx::new(&mut source, pid, 0);
        app.init(&mut ctx).unwrap();
    }
    // Run 10 steps of real clustering on the source host.
    for i in 0..10 {
        let mut ctx = GuestCtx::new(&mut source, pid, i);
        app.step(&mut ctx).unwrap();
    }
    println!("source host: streamcluster ran 10 steps");

    // The (1,1) placement: one "replica" — the destination host's agent.
    let mut opts = OptimizationConfig::nilicon();
    opts.backups = 1;
    opts.quorum = 1;
    let (tracer, ring) = Tracer::in_memory(4096);
    let mut engine = PlacementEngine::new(opts, source.costs.clone()).unwrap();
    engine.set_tracer(tracer.clone());
    engine.prepare(&mut source, &container).unwrap();
    source.meter.take();

    // COW-deferred full checkpoint: the source stops only for the protect
    // pass, then resumes while the pages stream.
    tracer.mark(TraceEvent::RepairStart {
        kind: "migration".into(),
        attempt: 0,
    });
    let begin = engine.bootstrap_begin(&mut source, &container, 1).unwrap();
    println!(
        "migration start: {} pages deferred, {:.1} KiB of metadata, {:.2} ms stop",
        begin.total_pages,
        begin.state_bytes as f64 / 1024.0,
        begin.stop_time as f64 / 1e6
    );

    // Stream-while-serving: the source keeps clustering between chunks.
    let mut dest = Kernel::default();
    let mut streamed_pages = 0u64;
    let mut streamed_bytes = 0u64;
    let mut chunks = 0u64;
    loop {
        {
            let mut ctx = GuestCtx::new(&mut source, pid, 100 + chunks);
            app.step(&mut ctx).unwrap();
        }
        let step = engine.bootstrap_step(&mut source, 1, CHUNK_PAGES).unwrap();
        if step.pages > 0 {
            tracer.mark(TraceEvent::RepairChunk {
                pages: step.pages,
                bytes: step.bytes,
            });
        }
        streamed_pages += step.pages;
        streamed_bytes += step.bytes;
        chunks += 1;
        if step.remaining == 0 {
            break;
        }
        assert!(chunks < 10_000, "stream must drain");
    }
    engine.bootstrap_finish(&mut dest, 1).unwrap();
    tracer.mark(TraceEvent::RepairComplete {
        pages: streamed_pages,
        bytes: streamed_bytes,
    });
    println!(
        "streamed {streamed_pages} pages / {:.1} MiB in {chunks} chunks; \
         source kept computing throughout",
        streamed_bytes as f64 / 1048576.0
    );

    // The cut-over is a deliberate failover onto the destination.
    let (restored, report) = engine.failover(&mut dest).unwrap();
    restored.finish(&mut dest).unwrap();
    println!(
        "destination host: restored {} processes in {:.1} ms virtual time",
        restored.container.workers.len() + 1,
        report.restore as f64 / 1e6
    );

    // A FRESH app object resumes from the migrated guest state — the
    // algorithm's cursor, centers, and cost all came through the image.
    let mut resumed = StreamclusterApp::new(Scale::small());
    resumed.passes = 4;
    let dest_pid = restored.container.init_pid();
    let mut steps_after = 0u64;
    loop {
        let mut ctx = GuestCtx::new(&mut dest, dest_pid, 10_000 + steps_after);
        if resumed.step(&mut ctx).unwrap().done {
            break;
        }
        steps_after += 1;
        assert!(steps_after < 10_000, "must converge");
    }
    println!("destination host: computation resumed and completed after {steps_after} more steps");

    let records = ring.snapshot();
    let starts = records
        .iter()
        .filter(|r| matches!(r.kind, TraceEvent::RepairStart { .. }))
        .count();
    let chunk_events = records
        .iter()
        .filter(|r| matches!(r.kind, TraceEvent::RepairChunk { .. }))
        .count();
    let completes = records
        .iter()
        .filter(|r| matches!(r.kind, TraceEvent::RepairComplete { .. }))
        .count();
    assert_eq!(starts, 1);
    assert!(chunk_events >= 1);
    assert_eq!(completes, 1);
    println!(
        "trace: RepairStart(kind=migration) ×{starts}, RepairChunk ×{chunk_events}, \
         RepairComplete ×{completes} — identical event stream to a coded repair."
    );
    println!("migration preserved every byte of algorithm state — no restart from scratch.");
}
