//! Quickstart: replicate a Redis-like container with NiLiCon and watch the
//! epoch loop work.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nilicon_repro::core::harness::{RunHarness, RunMode};
use nilicon_repro::core::{NiLiConEngine, OptimizationConfig, ReplicationConfig};
use nilicon_repro::sim::CostModel;
use nilicon_repro::workloads::{self, Scale};

fn main() {
    // 1. Pick a workload: a Redis-like store with 4 YCSB-style clients.
    let workload = workloads::redis(Scale::small(), 4, None);

    // 2. Wrap it in the replication harness: three simulated hosts (primary,
    //    backup, client), the container on the primary, NiLiCon with every
    //    §V optimization enabled.
    let engine = NiLiConEngine::new(OptimizationConfig::nilicon(), CostModel::default());
    let mut harness = RunHarness::new(
        workload.spec,
        workload.app,
        workload.behavior,
        RunMode::Replicated(Box::new(engine)),
        ReplicationConfig::default(), // 30 ms epochs, 30 ms heartbeats, 3 misses
        workload.parallelism,
    )
    .expect("harness construction");

    // 3. Run 50 epochs (~1.5 virtual seconds).
    harness.run_epochs(50).expect("replication run");

    // 4. Inspect the result.
    let result = harness.finish();
    result.verify.expect("client-side consistency validation");
    assert_eq!(result.broken_connections, 0);

    let m = &result.metrics;
    println!("NiLiCon quickstart — Redis-like workload, 50 epochs");
    println!("  virtual time elapsed : {:.2} s", m.elapsed as f64 / 1e9);
    println!("  requests served      : {}", m.requests_total);
    println!("  throughput           : {:.0} req/s", m.throughput_rps());
    println!(
        "  avg stop time        : {:.2} ms (paper Redis: 18.9 ms)",
        m.avg_stop() as f64 / 1e6
    );
    println!(
        "  avg dirty pages/epoch: {:.0} (paper Redis: 6.3K)",
        m.avg_dirty_pages()
    );
    println!(
        "  mean response latency: {:.1} ms",
        m.mean_latency() as f64 / 1e6
    );
    println!(
        "  backup core util     : {:.2} cores",
        m.backup_utilization()
    );
    println!(
        "  state p50 per epoch  : {:.1} MiB",
        m.state_percentile(50.0) as f64 / 1048576.0
    );
    println!("\nEvery response the clients saw was covered by a committed checkpoint.");
}
