//! Derive macros for the vendored offline `serde` stand-in.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! item shapes this workspace actually uses: named-field structs, tuple
//! structs (any arity, newtype included), unit structs, and enums whose
//! variants are unit or tuple variants. Generic items are rejected.
//!
//! The implementation deliberately avoids `syn`/`quote` (unavailable
//! offline): it walks the raw `TokenTree`s to extract the item shape, then
//! emits the impl as a string and re-parses it into a `TokenStream`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the derive input item.
enum Item {
    /// `struct Name { f1: T1, ... }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct Name(T1, ...);` — arity recorded, field types inferred.
    TupleStruct { name: String, arity: usize },
    /// `struct Name;`
    UnitStruct { name: String },
    /// `enum Name { V1, V2(T), V3(T, U), ... }`
    Enum { name: String, variants: Vec<(String, usize)> },
}

/// Skip any `#[...]` attributes (doc comments included) starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip `pub` / `pub(...)` starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Count comma-separated entries in a field/variant-data group, ignoring
/// commas nested inside `<...>` (angle brackets are punctuation, not groups).
fn count_entries(g: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = g.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    commas += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    commas + 1 - usize::from(trailing_comma)
}

/// Extract field names from a named-field struct body.
fn named_fields(g: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde derive: expected field name, found `{other}`"),
            None => break,
        };
        fields.push(name);
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!("serde derive: expected `:` after field name"),
        }
        // Skip the type: everything up to the next comma at angle depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Extract `(variant_name, tuple_arity)` pairs from an enum body.
/// Arity 0 means a unit variant.
fn enum_variants(g: &proc_macro::Group) -> Vec<(String, usize)> {
    let tokens: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde derive: expected variant name, found `{other}`"),
            None => break,
        };
        i += 1;
        let arity = match tokens.get(i) {
            Some(TokenTree::Group(d)) if d.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                count_entries(d)
            }
            Some(TokenTree::Group(d)) if d.delimiter() == Delimiter::Brace => {
                panic!("serde derive: struct-style enum variants are not supported offline")
            }
            _ => 0,
        };
        variants.push((name, arity));
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => break,
            Some(other) => panic!("serde derive: expected `,` after variant, found `{other}`"),
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => panic!("serde derive: expected `struct` or `enum`"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => panic!("serde derive: expected item name"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive: generic types are not supported offline (on `{name}`)");
        }
    }
    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: named_fields(g),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_entries(g),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            _ => panic!("serde derive: unrecognized struct body for `{name}`"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: enum_variants(g),
            },
            _ => panic!("serde derive: expected enum body for `{name}`"),
        },
        other => panic!("serde derive: cannot derive on `{other}` items"),
    }
}

/// `#[derive(Serialize)]`: emit an `impl serde::ser::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let pairs = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), serde::ser::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "impl serde::ser::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Object(vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl serde::ser::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                     serde::ser::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let elems = (0..arity)
                .map(|n| format!("serde::ser::Serialize::to_value(&self.{n})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "impl serde::ser::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Array(vec![{elems}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl serde::ser::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{ serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms = variants
                .iter()
                .map(|(v, arity)| match arity {
                    0 => format!("{name}::{v} => serde::Value::Str(\"{v}\".to_string()),"),
                    1 => format!(
                        "{name}::{v}(x0) => serde::Value::Object(vec![(\"{v}\".to_string(), \
                         serde::ser::Serialize::to_value(x0))]),"
                    ),
                    n => {
                        let binds = (0..*n)
                            .map(|k| format!("x{k}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let elems = (0..*n)
                            .map(|k| format!("serde::ser::Serialize::to_value(x{k})"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        format!(
                            "{name}::{v}({binds}) => serde::Value::Object(vec![(\"{v}\".to_string(), \
                             serde::Value::Array(vec![{elems}]))]),"
                        )
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "impl serde::ser::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("serde derive: generated impl parses")
}

/// `#[derive(Deserialize)]`: emit an `impl serde::de::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let inits = fields
                .iter()
                .map(|f| format!("{f}: serde::de::field(o, \"{f}\")?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "impl serde::de::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         let o = v.as_object().ok_or_else(|| \
                             serde::Error::msg(\"expected object for {name}\"))?;\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl serde::de::Deserialize for {name} {{\n\
                 fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                     Ok({name}(serde::de::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let elems = (0..arity)
                .map(|n| format!("serde::de::Deserialize::from_value(&a[{n}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "impl serde::de::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         let a = v.as_array().ok_or_else(|| \
                             serde::Error::msg(\"expected array for {name}\"))?;\n\
                         if a.len() != {arity} {{\n\
                             return Err(serde::Error::msg(\"wrong arity for {name}\"));\n\
                         }}\n\
                         Ok({name}({elems}))\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl serde::de::Deserialize for {name} {{\n\
                 fn from_value(_v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                     Ok({name})\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms = variants
                .iter()
                .filter(|(_, a)| *a == 0)
                .map(|(v, _)| format!("\"{v}\" => return Ok({name}::{v}),"))
                .collect::<Vec<_>>()
                .join("\n");
            let data_arms = variants
                .iter()
                .filter(|(_, a)| *a > 0)
                .map(|(v, arity)| match arity {
                    1 => format!(
                        "\"{v}\" => return Ok({name}::{v}(\
                         serde::de::Deserialize::from_value(inner)?)),"
                    ),
                    n => {
                        let elems = (0..*n)
                            .map(|k| format!("serde::de::Deserialize::from_value(&a[{k}])?"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        format!(
                            "\"{v}\" => {{\n\
                                 let a = inner.as_array().ok_or_else(|| \
                                     serde::Error::msg(\"expected array for {name}::{v}\"))?;\n\
                                 if a.len() != {n} {{\n\
                                     return Err(serde::Error::msg(\"wrong arity for {name}::{v}\"));\n\
                                 }}\n\
                                 return Ok({name}::{v}({elems}));\n\
                             }}"
                        )
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            let str_block = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let Some(s) = v.as_str() {{\n\
                         match s {{\n{unit_arms}\n_ => {{}}\n}}\n\
                     }}\n"
                )
            };
            let obj_block = if data_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let Some(o) = v.as_object() {{\n\
                         if o.len() == 1 {{\n\
                             let (tag, inner) = (&o[0].0, &o[0].1);\n\
                             match tag.as_str() {{\n{data_arms}\n_ => {{}}\n}}\n\
                         }}\n\
                     }}\n"
                )
            };
            format!(
                "impl serde::de::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         {str_block}{obj_block}\
                         Err(serde::Error::msg(\"unrecognized value for {name}\"))\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().expect("serde derive: generated impl parses")
}
