//! Offline stand-in for the `proptest` crate.
//!
//! This build environment has no crates.io access, so the workspace vendors
//! a minimal property-testing engine under the same crate name. It supports
//! the subset this repository's tests use:
//!
//! - `proptest! { #![proptest_config(ProptestConfig::with_cases(N))]
//!   #[test] fn f(x in strategy, ...) { ... } }`
//! - strategies: integer ranges, `any::<T>()`, `Just`, tuples (2–8),
//!   `.prop_map`, `prop_oneof!` (weighted and unweighted),
//!   `proptest::collection::vec`, `proptest::option::of`,
//!   `prop::sample::Index`, and `"[class]{m,n}"` string patterns
//! - assertions: `prop_assert!` / `prop_assert_eq!`
//!
//! Differences from real proptest: the RNG is a fixed-seed SplitMix64 (every
//! run explores the same cases — deterministic by design for this repo's
//! virtual-time tests) and there is **no shrinking**: a failing case reports
//! its case number and message only.

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// Deterministic RNG driving all strategies (SplitMix64, fixed seed).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The fixed-seed RNG used by the [`proptest!`] harness.
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x0bad_5eed_cafe_f00d ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces the final value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between boxed strategies ([`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u32,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` arms. Weights must sum to nonzero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof: weights sum to zero");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total as u64) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("prop_oneof: weight bookkeeping")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "any value" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Produce an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T` (via [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! tuple_strategy {
    ($($idx:tt $name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(0 A, 1 B);
tuple_strategy!(0 A, 1 B, 2 C);
tuple_strategy!(0 A, 1 B, 2 C, 3 D);
tuple_strategy!(0 A, 1 B, 2 C, 3 D, 4 E);
tuple_strategy!(0 A, 1 B, 2 C, 3 D, 4 E, 5 F);
tuple_strategy!(0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G);
tuple_strategy!(0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H);

/// String pattern strategy: supports exactly `"[class]{m,n}"`, `"[class]{m}"`
/// and `"[class]"` where `class` lists literal characters and `a-z` ranges.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_pattern(self);
        let len = if max > min {
            min + rng.below((max - min + 1) as u64) as usize
        } else {
            min
        };
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

fn parse_pattern(pat: &str) -> (Vec<char>, usize, usize) {
    let rest = pat
        .strip_prefix('[')
        .unwrap_or_else(|| panic!("unsupported string pattern `{pat}`"));
    let close = rest
        .find(']')
        .unwrap_or_else(|| panic!("unterminated class in `{pat}`"));
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            for c in lo..=hi {
                alphabet.push(char::from_u32(c).unwrap());
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty character class in `{pat}`");
    let reps = &rest[close + 1..];
    if reps.is_empty() {
        return (alphabet, 1, 1);
    }
    let inner = reps
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repetition in `{pat}`"));
    let (min, max) = match inner.split_once(',') {
        Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
        None => {
            let n = inner.trim().parse().unwrap();
            (n, n)
        }
    };
    (alphabet, min, max)
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count bounds for collection strategies.
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A vector of values from `elem`, sized within `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies (`of`).

    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>` (25% `None`).
    pub struct OptionStrategy<S>(S);

    /// `Some` from the inner strategy 75% of the time, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod sample {
    //! Sampling helpers (`Index`).

    use super::{Arbitrary, TestRng};

    /// An abstract index, resolved against a concrete length with
    /// [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolve to a concrete index `< len`. Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Per-`proptest!` configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod prelude {
    //! Everything the tests import.

    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Fallible assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                format!($($fmt)+)
            ));
        }
    };
}

/// Fallible equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assert_eq failed at {}:{}: {:?} != {:?}",
                file!(),
                line!(),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assert_eq failed at {}:{}: {}: {:?} != {:?}",
                file!(),
                line!(),
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

/// Weighted or unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// Declare property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    (@run ($config:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic();
                for case in 0..config.cases {
                    let outcome = {
                        $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                        (move || -> ::std::result::Result<(), ::std::string::String> {
                            $body
                            Ok(())
                        })()
                    };
                    if let Err(msg) = outcome {
                        panic!("proptest {} failed on case {case}: {msg}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}
