//! Offline stand-in for the `serde_json` crate.
//!
//! Provides [`to_string`] and [`from_str`] over the vendored `serde`
//! [`Value`] data model, with a small hand-written JSON writer and parser.
//! Output conventions match real serde_json closely enough for round-trips
//! and human inspection: objects keep field order, floats print via `{}`,
//! strings are escaped per RFC 8259.

pub use serde::Error;
use serde::{de::Deserialize, ser::Serialize, Value};

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse_value(s)?)
}

/// Parse a JSON string into a raw [`Value`] tree.
pub fn value_from_str(s: &str) -> Result<Value, Error> {
    parse_value(s)
}

/// Serialize a raw [`Value`] tree to a compact JSON string.
pub fn value_to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, &mut out);
    out
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Match serde_json: integral floats still carry ".0".
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal, expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::msg("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("short \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(Error::msg("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 sequences from the source.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .ok_or_else(|| Error::msg("truncated UTF-8"))?;
                    let s =
                        std::str::from_utf8(chunk).map_err(|_| Error::msg("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = start + width;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if text.is_empty() {
            return Err(Error::msg("expected a JSON value"));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg("invalid float"))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::msg("invalid integer"))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::msg("expected `,` or `}`")),
            }
        }
    }
}

fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Int(-3)),
            ("b".to_string(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("c".to_string(), Value::Str("x\n\"y\"".to_string())),
            ("d".to_string(), Value::Float(1.5)),
        ]);
        let s = value_to_string(&v);
        assert_eq!(parse_value(&s).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = parse_value(" { \"k\" : [ 1 , \"héllo\\u0021\" ] } ").unwrap();
        assert_eq!(
            v.get("k").unwrap().as_array().unwrap()[1].as_str().unwrap(),
            "héllo!"
        );
    }
}
