//! Offline stand-in for the `bytes` crate.
//!
//! Provides the [`Bytes`] type with the subset of the real API this
//! workspace uses: cheap clones of an immutable byte buffer, constructed
//! from slices, vectors, or static data, read through `Deref<Target=[u8]>`.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-cloneable immutable byte buffer (reference-counted).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Wrap static data (copied here; the real crate borrows, but the
    /// observable behavior is identical for an immutable buffer).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_deref() {
        assert!(Bytes::new().is_empty());
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        let v: Bytes = vec![9u8].into();
        assert_eq!(v.iter().copied().sum::<u8>(), 9);
    }
}
