//! Offline stand-in for the `criterion` crate.
//!
//! This build environment has no crates.io access, so benches link against
//! this minimal shim: each registered benchmark closure is executed a small
//! fixed number of times and wall-clock timed with `std::time::Instant` —
//! enough for `cargo bench -- --test` smoke coverage and for eyeballing
//! gross regressions, with none of real criterion's statistics.

use std::time::Instant;

/// Benchmark registry and runner.
pub struct Criterion {
    _priv: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _priv: () }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        run_one(&name.into(), f);
    }

    /// Configuration hook (accepted, ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Finalization hook (no-op).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Sample-count hint (accepted, ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a named benchmark within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl BenchId, f: F) {
        run_one(&format!("{}/{}", self.name, id.render()), f);
    }

    /// Run a parameterized benchmark within this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl BenchId,
        input: &I,
        mut f: F,
    ) {
        run_one(&format!("{}/{}", self.name, id.render()), |b| f(b, input));
    }

    /// End the group (no-op).
    pub fn finish(self) {}
}

/// Things usable as a benchmark name (`&str`, `String`, [`BenchmarkId`]).
pub trait BenchId {
    /// Display form of the id.
    fn render(&self) -> String;
}

impl BenchId for &str {
    fn render(&self) -> String {
        self.to_string()
    }
}

impl BenchId for String {
    fn render(&self) -> String {
        self.clone()
    }
}

/// A function-name + parameter benchmark id.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Combine a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl BenchId for BenchmarkId {
    fn render(&self) -> String {
        self.text.clone()
    }
}

/// Batch-size hint for `iter_batched` (accepted, ignored).
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per batch.
    PerIteration,
}

/// Passed to benchmark closures; `iter`/`iter_batched` time the routine.
pub struct Bencher {
    iters: u32,
    total_nanos: u128,
}

impl Bencher {
    /// Time `routine` over a few iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            let t = Instant::now();
            let out = routine();
            self.total_nanos += t.elapsed().as_nanos();
            drop(out);
        }
    }

    /// Time `routine` with fresh setup output per iteration.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let t = Instant::now();
            let out = routine(input);
            self.total_nanos += t.elapsed().as_nanos();
            drop(out);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher {
        iters: 3,
        total_nanos: 0,
    };
    f(&mut b);
    let per_iter = b.total_nanos / u128::from(b.iters.max(1));
    println!("bench {name}: ~{per_iter} ns/iter (offline shim, {} iters)", b.iters);
}

/// Group benchmark functions under one registration symbol.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emit `main` running the registered groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- --test` passes `--test`; all args are ignored.
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}
