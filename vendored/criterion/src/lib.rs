//! Offline stand-in for the `criterion` crate.
//!
//! This build environment has no crates.io access, so benches link against
//! this minimal shim: each registered benchmark closure is warmed up untimed
//! and then executed a small fixed number of times, wall-clock timed with
//! `std::time::Instant` — enough for `cargo bench -- --test` smoke coverage
//! and for eyeballing gross regressions, with none of real criterion's
//! statistics.
//!
//! Beyond printing per-bench lines, the shim records every sample and, at
//! the end of `criterion_main`, writes `BENCH_<binary-stem>.json` into the
//! working directory — `[{"name", "mean_ns", "p50_ns", "p99_ns"}, ...]` —
//! so the perf trajectory is machine-readable across PRs.

use std::sync::Mutex;
use std::time::Instant;

/// One finished benchmark's summary statistics.
struct BenchResult {
    name: String,
    mean_ns: u128,
    p50_ns: u128,
    p99_ns: u128,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Benchmark registry and runner.
pub struct Criterion {
    _priv: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _priv: () }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        run_one(&name.into(), f);
    }

    /// Configuration hook (accepted, ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Finalization hook (no-op).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Sample-count hint (accepted, ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a named benchmark within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl BenchId, f: F) {
        run_one(&format!("{}/{}", self.name, id.render()), f);
    }

    /// Run a parameterized benchmark within this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl BenchId,
        input: &I,
        mut f: F,
    ) {
        run_one(&format!("{}/{}", self.name, id.render()), |b| f(b, input));
    }

    /// End the group (no-op).
    pub fn finish(self) {}
}

/// Things usable as a benchmark name (`&str`, `String`, [`BenchmarkId`]).
pub trait BenchId {
    /// Display form of the id.
    fn render(&self) -> String;
}

impl BenchId for &str {
    fn render(&self) -> String {
        self.to_string()
    }
}

impl BenchId for String {
    fn render(&self) -> String {
        self.clone()
    }
}

/// A function-name + parameter benchmark id.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Combine a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl BenchId for BenchmarkId {
    fn render(&self) -> String {
        self.text.clone()
    }
}

/// Batch-size hint for `iter_batched` (accepted, ignored).
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per batch.
    PerIteration,
}

/// Passed to benchmark closures; `iter`/`iter_batched` time the routine.
pub struct Bencher {
    iters: u32,
    samples: Vec<u128>,
}

impl Bencher {
    /// Time `routine` over a few iterations, after untimed warmup rounds
    /// (cold caches, lazy page faults, and branch-predictor training
    /// otherwise land entirely in the first sample and skew the mean).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            drop(routine());
        }
        for _ in 0..self.iters {
            let t = Instant::now();
            let out = routine();
            self.samples.push(t.elapsed().as_nanos());
            drop(out);
        }
    }

    /// Time `routine` with fresh setup output per iteration (setup untimed).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..WARMUP_ITERS {
            drop(routine(setup()));
        }
        for _ in 0..self.iters {
            let input = setup();
            let t = Instant::now();
            let out = routine(input);
            self.samples.push(t.elapsed().as_nanos());
            drop(out);
        }
    }
}

/// Untimed iterations before sampling starts.
const WARMUP_ITERS: u32 = 3;

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher {
        iters: 15,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        b.samples.push(0);
    }
    let mut sorted = b.samples.clone();
    sorted.sort_unstable();
    let mean = b.samples.iter().sum::<u128>() / b.samples.len() as u128;
    let p50 = sorted[sorted.len() / 2];
    let p99 = sorted[(sorted.len() * 99 / 100).min(sorted.len() - 1)];
    println!(
        "bench {name}: ~{mean} ns/iter (offline shim, {} samples, p50 {p50}, p99 {p99})",
        sorted.len()
    );
    RESULTS.lock().unwrap().push(BenchResult {
        name: name.to_string(),
        mean_ns: mean,
        p50_ns: p50,
        p99_ns: p99,
    });
}

/// Stem of the running bench binary, with cargo's trailing `-<hash>`
/// stripped: `target/release/deps/pagestore-1a2b3c` → `pagestore`.
fn bench_stem() -> String {
    let argv0 = std::env::args().next().unwrap_or_default();
    let stem = std::path::Path::new(&argv0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench")
        .to_string();
    match stem.rsplit_once('-') {
        Some((base, hash))
            if !base.is_empty() && hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            base.to_string()
        }
        _ => stem,
    }
}

/// Nearest ancestor of the working directory holding a `Cargo.lock` (the
/// workspace root), so every bench binary drops its JSON in one place no
/// matter which package cargo ran it from. Falls back to the cwd itself.
fn workspace_root() -> std::path::PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| ".".into());
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.to_path_buf();
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return cwd,
        }
    }
}

/// Write the collected results as `BENCH_<stem>.json` in the workspace
/// root (one array of `{name, mean_ns, p50_ns, p99_ns}` objects).
/// Called by `criterion_main!` after all groups ran; a no-op with no results.
pub fn write_results() {
    let results = RESULTS.lock().unwrap();
    if results.is_empty() {
        return;
    }
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let name = r.name.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!(
            "  {{\"name\": \"{name}\", \"mean_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}{}\n",
            r.mean_ns,
            r.p50_ns,
            r.p99_ns,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    let path = workspace_root().join(format!("BENCH_{}.json", bench_stem()));
    match std::fs::write(&path, out) {
        Ok(()) => println!("bench results written to {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Group benchmark functions under one registration symbol.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emit `main` running the registered groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- --test` passes `--test`; all args are ignored.
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            $crate::write_results();
        }
    };
}
