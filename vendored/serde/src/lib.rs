//! Offline stand-in for the `serde` crate.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors a minimal serialization framework under the same crate name.
//! It supports exactly what this repository uses: `#[derive(Serialize,
//! Deserialize)]` on non-generic structs and enums, plus `serde_json`'s
//! `to_string`/`from_str` over a single [`Value`] data model.
//!
//! The data model is a JSON-shaped tree ([`Value`]); `Serialize` converts a
//! type *into* a tree, `Deserialize` reconstructs a type *from* one. Derived
//! impls follow serde's externally-tagged conventions (unit enum variants as
//! strings, data variants as single-key objects, newtype structs as their
//! inner value) so the emitted JSON looks like real serde's output.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer (covers the full `u64`/`i64` range).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, as ordered key/value pairs (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer contents, if numeric.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i128),
            _ => None,
        }
    }

    /// The float contents, if numeric.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// New error with a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub mod ser {
    //! Serialization: types → [`Value`](crate::Value).

    use super::Value;

    /// Convert `self` into the [`Value`] data model.
    pub trait Serialize {
        /// Produce the value tree for `self`.
        fn to_value(&self) -> Value;
    }

    macro_rules! ser_int {
        ($($t:ty),*) => {$(
            impl Serialize for $t {
                fn to_value(&self) -> Value { Value::Int(*self as i128) }
            }
        )*};
    }
    ser_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    impl Serialize for f32 {
        fn to_value(&self) -> Value {
            Value::Float(*self as f64)
        }
    }
    impl Serialize for f64 {
        fn to_value(&self) -> Value {
            Value::Float(*self)
        }
    }
    impl Serialize for bool {
        fn to_value(&self) -> Value {
            Value::Bool(*self)
        }
    }
    impl Serialize for String {
        fn to_value(&self) -> Value {
            Value::Str(self.clone())
        }
    }
    impl Serialize for str {
        fn to_value(&self) -> Value {
            Value::Str(self.to_string())
        }
    }
    impl Serialize for char {
        fn to_value(&self) -> Value {
            Value::Str(self.to_string())
        }
    }

    impl<T: Serialize + ?Sized> Serialize for &T {
        fn to_value(&self) -> Value {
            (**self).to_value()
        }
    }
    impl<T: Serialize + ?Sized> Serialize for Box<T> {
        fn to_value(&self) -> Value {
            (**self).to_value()
        }
    }
    impl<T: Serialize> Serialize for Option<T> {
        fn to_value(&self) -> Value {
            match self {
                Some(v) => v.to_value(),
                None => Value::Null,
            }
        }
    }
    impl<T: Serialize> Serialize for Vec<T> {
        fn to_value(&self) -> Value {
            Value::Array(self.iter().map(Serialize::to_value).collect())
        }
    }
    impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
        fn to_value(&self) -> Value {
            Value::Array(self.iter().map(Serialize::to_value).collect())
        }
    }
    impl<T: Serialize> Serialize for [T] {
        fn to_value(&self) -> Value {
            Value::Array(self.iter().map(Serialize::to_value).collect())
        }
    }
    impl<T: Serialize, const N: usize> Serialize for [T; N] {
        fn to_value(&self) -> Value {
            Value::Array(self.iter().map(Serialize::to_value).collect())
        }
    }

    macro_rules! ser_tuple {
        ($($n:tt $t:ident),+) => {
            impl<$($t: Serialize),+> Serialize for ($($t,)+) {
                fn to_value(&self) -> Value {
                    Value::Array(vec![$(self.$n.to_value()),+])
                }
            }
        };
    }
    ser_tuple!(0 A);
    ser_tuple!(0 A, 1 B);
    ser_tuple!(0 A, 1 B, 2 C);
    ser_tuple!(0 A, 1 B, 2 C, 3 D);
    ser_tuple!(0 A, 1 B, 2 C, 3 D, 4 E);

    impl<K: ToString, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
        fn to_value(&self) -> Value {
            let mut pairs: Vec<(String, Value)> = self
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect();
            pairs.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Object(pairs)
        }
    }
    impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
        fn to_value(&self) -> Value {
            Value::Object(
                self.iter()
                    .map(|(k, v)| (k.to_string(), v.to_value()))
                    .collect(),
            )
        }
    }
}

pub mod de {
    //! Deserialization: [`Value`](crate::Value) → types.

    use super::{Error, Value};

    /// Reconstruct `Self` from the [`Value`] data model.
    pub trait Deserialize: Sized {
        /// Parse `Self` out of a value tree.
        fn from_value(v: &Value) -> Result<Self, Error>;
    }

    /// Derived-code helper: extract and deserialize object field `name`.
    pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
        match obj.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v),
            None => Err(Error::msg(format!("missing field `{name}`"))),
        }
    }

    macro_rules! de_int {
        ($($t:ty),*) => {$(
            impl Deserialize for $t {
                fn from_value(v: &Value) -> Result<Self, Error> {
                    v.as_int()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))
                }
            }
        )*};
    }
    de_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    impl Deserialize for f64 {
        fn from_value(v: &Value) -> Result<Self, Error> {
            v.as_float().ok_or_else(|| Error::msg("expected float"))
        }
    }
    impl Deserialize for f32 {
        fn from_value(v: &Value) -> Result<Self, Error> {
            f64::from_value(v).map(|f| f as f32)
        }
    }
    impl Deserialize for bool {
        fn from_value(v: &Value) -> Result<Self, Error> {
            match v {
                Value::Bool(b) => Ok(*b),
                _ => Err(Error::msg("expected bool")),
            }
        }
    }
    impl Deserialize for String {
        fn from_value(v: &Value) -> Result<Self, Error> {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| Error::msg("expected string"))
        }
    }

    impl<T: Deserialize> Deserialize for Option<T> {
        fn from_value(v: &Value) -> Result<Self, Error> {
            match v {
                Value::Null => Ok(None),
                other => T::from_value(other).map(Some),
            }
        }
    }
    impl<T: Deserialize> Deserialize for Box<T> {
        fn from_value(v: &Value) -> Result<Self, Error> {
            T::from_value(v).map(Box::new)
        }
    }
    impl<T: Deserialize> Deserialize for Vec<T> {
        fn from_value(v: &Value) -> Result<Self, Error> {
            v.as_array()
                .ok_or_else(|| Error::msg("expected array"))?
                .iter()
                .map(T::from_value)
                .collect()
        }
    }
    impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
        fn from_value(v: &Value) -> Result<Self, Error> {
            Vec::<T>::from_value(v).map(Into::into)
        }
    }
    impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
        fn from_value(v: &Value) -> Result<Self, Error> {
            let items = Vec::<T>::from_value(v)?;
            if items.len() != N {
                return Err(Error::msg(format!("expected array of length {N}")));
            }
            match items.try_into() {
                Ok(arr) => Ok(arr),
                Err(_) => Err(Error::msg("array length mismatch")),
            }
        }
    }

    macro_rules! de_tuple {
        ($($n:tt $t:ident),+) => {
            impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
                fn from_value(v: &Value) -> Result<Self, Error> {
                    let a = v.as_array().ok_or_else(|| Error::msg("expected tuple array"))?;
                    Ok(($($t::from_value(
                        a.get($n).ok_or_else(|| Error::msg("tuple too short"))?
                    )?,)+))
                }
            }
        };
    }
    de_tuple!(0 A);
    de_tuple!(0 A, 1 B);
    de_tuple!(0 A, 1 B, 2 C);
    de_tuple!(0 A, 1 B, 2 C, 3 D);
}

// The traits share names with the derive macros (different namespaces),
// mirroring real serde: `use serde::{Serialize, Deserialize}` brings in both.
pub use de::Deserialize;
pub use ser::Serialize;
